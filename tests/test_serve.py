"""Planning-as-a-service: store, single-flight, server, warm-start.

Covers the `repro.serve` subsystem plus the concurrency contracts this
PR hardened in `EvaluationCache`:

* key codec round-trips (decoded keys hash/compare equal to fresh ones);
* LRU bounds + eviction accounting;
* persistence: atomic snapshot, warm-start, corrupt-file quarantine;
* single-flight: one owner per key, coalesced waiters, abandon on error;
* threaded hammer over one cache: no exceptions, ``hits + misses ==
  gets`` (the torn-read satellite fix);
* session-level coalescing: a thundering herd of identical ``plan``
  requests prices each candidate exactly once;
* the JSON-RPC server: every method, error codes, both byte-identical
  warm-start answers after a kill-and-restart, and the stdio transport.
"""

from __future__ import annotations

import io
import json
import os
import random
import threading

import pytest

from repro.api import Job, Machine, Session
from repro.autotune.cache import EvaluationCache, evaluation_cache_key
from repro.autotune.estimator import make_estimator
from repro.models import get_spec
from repro.parallel.scenarios import get_scenario
from repro.serve import (
    STORE_FORMAT,
    STORE_VERSION,
    PersistentEvaluationStore,
    PlanningServer,
    decode_key,
    encode_key,
    serve_stdio,
)


def _one_evaluation(model="gpt3-xl", n_gpus=8):
    """A real (key, Evaluation) pair to feed stores in unit tests."""
    spec = get_spec(model)
    machine = Machine.summit()
    est = make_estimator("analytic", spec, machine.cal)
    from repro.autotune.space import SearchSpace

    config = next(iter(SearchSpace(spec, n_gpus).candidates()))
    key = evaluation_cache_key(machine, spec, "analytic", config)
    return key, est.evaluate(config)


# ---------------------------------------------------------------------------
# key codec
# ---------------------------------------------------------------------------

class TestKeyCodec:
    def test_round_trip_neutral_key(self):
        key, _ = _one_evaluation()
        decoded = decode_key(encode_key(key))
        assert decoded == key
        assert hash(decoded) == hash(key)

    def test_round_trip_scenario_key(self):
        spec = get_spec("gpt3-xl")
        machine = Machine.summit(budget_gb=12)
        from repro.autotune.space import SearchSpace

        config = next(iter(SearchSpace(spec, 8).candidates()))
        key = evaluation_cache_key(
            machine, spec, "sim", config,
            scenario=get_scenario("degraded-ring"), partition_mode="time",
        )
        decoded = decode_key(encode_key(key))
        assert decoded == key
        assert hash(decoded) == hash(key)

    def test_json_round_trip_preserves_equality(self):
        key, _ = _one_evaluation()
        wire = json.loads(json.dumps(encode_key(key)))
        assert decode_key(wire) == key

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_key(object())
        with pytest.raises(ValueError):
            decode_key({"__mystery__": 1})


# ---------------------------------------------------------------------------
# the store: LRU + persistence
# ---------------------------------------------------------------------------

class TestStoreLRU:
    def test_eviction_is_lru_and_counted(self):
        store = PersistentEvaluationStore(max_entries=3)
        key, ev = _one_evaluation()
        keys = [(*key, i) for i in range(5)]
        for k in keys:
            store.put(k, ev)
        assert len(store) == 3
        assert store.evictions == 2
        assert keys[0] not in store and keys[1] not in store
        assert all(k in store for k in keys[2:])

    def test_get_refreshes_recency(self):
        store = PersistentEvaluationStore(max_entries=2)
        key, ev = _one_evaluation()
        a, b, c = (*key, "a"), (*key, "b"), (*key, "c")
        store.put(a, ev)
        store.put(b, ev)
        assert store.get(a) is ev  # a becomes most-recent
        store.put(c, ev)  # evicts b, not a
        assert a in store and c in store and b not in store

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PersistentEvaluationStore(max_entries=-1)
        with pytest.raises(ValueError):
            PersistentEvaluationStore(autosave_every=-1)


class TestStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        store = PersistentEvaluationStore(path=path)
        key, ev = _one_evaluation()
        store.put(key, ev)
        assert store.save() == 1
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == STORE_FORMAT
        assert header["version"] == STORE_VERSION

        warm = PersistentEvaluationStore(path=path)
        assert warm.load() == 1
        assert warm.loaded == 1
        assert warm.get(key).to_dict() == ev.to_dict()

    def test_missing_file_starts_cold(self, tmp_path):
        store = PersistentEvaluationStore(path=tmp_path / "nope.jsonl")
        assert store.load() == 0
        assert store.quarantined is None

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            PersistentEvaluationStore().save()

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        store = PersistentEvaluationStore(path=path)
        key, ev = _one_evaluation()
        store.put(key, ev)
        store.save()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["evals.jsonl"]

    def test_corrupt_header_quarantined(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        path.write_text("this is not a snapshot\n")
        store = PersistentEvaluationStore(path=path)
        assert store.load() == 0
        assert store.quarantined is not None
        assert not path.exists()
        assert os.path.exists(store.quarantined)

    def test_corrupt_record_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        store = PersistentEvaluationStore(path=path)
        key, ev = _one_evaluation()
        store.put(key, ev)
        store.save()
        with open(path, "a") as fh:
            fh.write('{"key": "torn write\n')
        warm = PersistentEvaluationStore(path=path)
        assert warm.load() == 1  # the valid prefix survives
        assert warm.quarantined is not None
        assert warm.get(key) is not None

    def test_wrong_version_quarantined(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        path.write_text(
            json.dumps({"format": STORE_FORMAT, "version": STORE_VERSION + 99})
            + "\n"
        )
        store = PersistentEvaluationStore(path=path)
        assert store.load() == 0
        assert store.quarantined is not None

    def test_autosave_every_n_puts(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        store = PersistentEvaluationStore(path=path, autosave_every=2)
        key, ev = _one_evaluation()
        store.put((*key, 1), ev)
        assert not path.exists()
        store.put((*key, 2), ev)
        assert path.exists()
        assert PersistentEvaluationStore(path=path).load() == 2


# ---------------------------------------------------------------------------
# single-flight
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_one_owner_per_key(self):
        store = PersistentEvaluationStore()
        key, ev = _one_evaluation()
        owned, flights, ready = store.acquire([key])
        assert owned == [key] and not flights and not ready
        # second caller coalesces onto the first's flight
        owned2, flights2, ready2 = store.acquire([key])
        assert not owned2 and key in flights2 and not ready2
        assert store.coalesced == 1
        store.fulfil(key, ev)
        assert flights2[key].result(timeout=5) is ev
        # once cached, acquire reports it ready (and counts a hit)
        owned3, flights3, ready3 = store.acquire([key])
        assert not owned3 and not flights3 and ready3 == {key: ev}

    def test_coalesced_herd_gets_one_value(self):
        store = PersistentEvaluationStore()
        key, ev = _one_evaluation()
        (owned, _, _) = store.acquire([key])
        assert owned == [key]
        n = 6
        got = []
        barrier = threading.Barrier(n + 1)

        def wait_one():
            _, flights, _ = store.acquire([key])
            barrier.wait()
            got.append(flights[key].result(timeout=10))

        threads = [threading.Thread(target=wait_one) for _ in range(n)]
        for t in threads:
            t.start()
        barrier.wait()  # every waiter is parked before the owner fulfils
        store.fulfil(key, ev)
        for t in threads:
            t.join()
        assert got == [ev] * n
        assert store.coalesced == n
        assert store.stats()["inflight"] == 0

    def test_abandon_wakes_waiters_with_error(self):
        store = PersistentEvaluationStore()
        key, _ = _one_evaluation()
        store.acquire([key])
        _, flights, _ = store.acquire([key])
        store.abandon(key, RuntimeError("estimator exploded"))
        with pytest.raises(RuntimeError):
            flights[key].result(timeout=5)
        assert key not in store


# ---------------------------------------------------------------------------
# the concurrency satellite: hammer one cache from many threads
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "make_cache",
    [EvaluationCache, PersistentEvaluationStore],
    ids=["EvaluationCache", "PersistentEvaluationStore"],
)
class TestConcurrentHammer:
    N_THREADS = 8
    OPS = 400

    def test_counters_reconcile_without_clear(self, make_cache):
        cache = make_cache()
        key, ev = _one_evaluation()
        keys = [(*key, i) for i in range(16)]
        gets = [0] * self.N_THREADS
        errors = []

        def hammer(tid):
            rng = random.Random(tid)
            try:
                for _ in range(self.OPS):
                    op = rng.random()
                    k = keys[rng.randrange(len(keys))]
                    if op < 0.45:
                        cache.get(k)
                        gets[tid] += 1
                    elif op < 0.8:
                        cache.put(k, ev)
                    elif op < 0.9:
                        k in cache  # noqa: B015 — exercising __contains__
                        len(cache)
                    else:
                        s = cache.stats()
                        assert set(s) >= {"entries", "hits", "misses", "dedup"}
            except Exception as err:  # pragma: no cover - the assertion
                errors.append(err)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        s = cache.stats()
        assert s["hits"] + s["misses"] == sum(gets)
        assert 0 < s["entries"] <= len(keys)

    def test_no_exceptions_with_concurrent_clear(self, make_cache):
        cache = make_cache()
        key, ev = _one_evaluation()
        keys = [(*key, i) for i in range(8)]
        errors = []

        def hammer(tid):
            rng = random.Random(tid)
            try:
                for _ in range(self.OPS):
                    op = rng.random()
                    k = keys[rng.randrange(len(keys))]
                    if op < 0.4:
                        cache.get(k)
                    elif op < 0.8:
                        cache.put(k, ev)
                    elif op < 0.95:
                        s = cache.stats()
                        assert all(v >= 0 for v in s.values() if isinstance(v, int))
                    else:
                        cache.clear()
            except Exception as err:  # pragma: no cover - the assertion
                errors.append(err)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# ---------------------------------------------------------------------------
# session-level coalescing
# ---------------------------------------------------------------------------

class TestSessionCoalescing:
    def test_store_plan_matches_plain_cache_plan(self):
        job = Job(model="gpt3-xl", n_gpus=16)
        plain = Session(Machine.summit(), cache=EvaluationCache()).plan(job)
        stored = Session(
            Machine.summit(), cache=PersistentEvaluationStore()
        ).plan(job)
        assert [e.to_dict() for e in stored.evaluations] == [
            e.to_dict() for e in plain.evaluations
        ]
        assert stored.stats.evaluated == plain.stats.evaluated
        assert stored.stats.cache_hits == plain.stats.cache_hits

    def test_store_robust_matrix_matches_plain_cache(self):
        job = Job(model="gpt3-xl", n_gpus=16, fidelity="analytic-batch")
        plain = Session(Machine.summit(), cache=EvaluationCache()).robust_plan(
            job, "collective-degraded"
        )
        stored = Session(
            Machine.summit(), cache=PersistentEvaluationStore()
        ).robust_plan(job, "collective-degraded")
        assert [e.to_dict() for e in stored.entries] == [
            e.to_dict() for e in plain.entries
        ]

    def test_thundering_herd_prices_each_candidate_once(self):
        store = PersistentEvaluationStore()
        session = Session(Machine.summit(), cache=store)
        job = Job(model="gpt3-xl", n_gpus=16, fidelity="sim")
        n = 6
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = session.plan(job)
            except Exception as err:  # pragma: no cover - the assertion
                errors.append(err)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        n_candidates = results[0].stats.candidates
        # the exactly-once contract: total evaluations across the herd
        # equal one cold search, however ownership was distributed
        assert sum(r.stats.evaluated for r in results) == n_candidates
        assert store.dedup == 0  # nobody overwrote anybody's entry
        # every request saw the identical ranking
        first = [e.to_dict() for e in results[0].evaluations]
        for r in results[1:]:
            assert [e.to_dict() for e in r.evaluations] == first
        # counted on the session registry for /metrics
        snap = session.metrics()
        assert snap.get("serve.inflight_coalesced", 0) == store.coalesced

    def test_abandon_on_estimator_failure_releases_waiters(self):
        store = PersistentEvaluationStore()
        session = Session(Machine.summit(), cache=store)
        job = Job(model="gpt3-xl", n_gpus=8)

        import repro.api.session as session_mod

        real = session_mod.make_estimator

        def broken(*args, **kwargs):
            est = real(*args, **kwargs)
            def boom(config):
                raise RuntimeError("estimator exploded")
            est.evaluate = boom
            return est

        session_mod.make_estimator = broken
        try:
            with pytest.raises(RuntimeError):
                session.plan(job)
        finally:
            session_mod.make_estimator = real
        # every owned key was abandoned: nothing left in flight, and a
        # retry with the healed estimator succeeds
        assert store.stats()["inflight"] == 0
        assert session.plan(job).best is not None


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------

def _rpc(method, params=None, rid=1):
    return {"jsonrpc": "2.0", "id": rid, "method": method, "params": params or {}}


class TestPlanningServer:
    def test_every_method_answers(self):
        srv = PlanningServer()
        job = {"model": "gpt3-xl", "n_gpus": 16}
        plan = srv.handle(_rpc("plan", {"job": job}))
        assert plan["result"]["best"] is not None
        robust = srv.handle(
            _rpc("robust_plan", {"job": {**job, "fidelity": "analytic-batch"},
                                 "scenarios": "neutral"})
        )
        assert robust["result"]["best"] is not None
        assert "per_scenario" not in robust["result"]
        place = srv.handle(_rpc("place", {"job": {"model": "gpt3-2.7b", "n_gpus": 16}}))
        assert place["result"]["makespan"] <= place["result"]["default_makespan"]
        breakdown = srv.handle(_rpc("breakdown", {"job": job}))
        assert breakdown["result"]["total"] > 0
        assert srv.handle(_rpc("ping"))["result"]["ok"]
        stats = srv.handle(_rpc("stats"))["result"]
        assert stats["entries"] > 0
        metrics = srv.handle(_rpc("metrics"))["result"]
        assert 'serve.requests{method="plan"}' in metrics["session"]
        assert metrics["store"]["entries"] == stats["entries"]

    def test_plan_search_axis_params(self):
        srv = PlanningServer()
        r = srv.handle(
            _rpc("plan", {
                "job": {"model": "gpt3-xl", "n_gpus": 16},
                "frameworks": ["axonn"],
                "microbatch_sizes": [1],
                "explore_no_checkpoint": False,
            })
        )
        rows = r["result"]["evaluations"]
        assert rows and all(e["config"]["framework"] == "axonn" for e in rows)
        assert all(e["config"]["mbs"] == 1 for e in rows)

    def test_error_codes(self):
        srv = PlanningServer()
        assert srv.handle(_rpc("no_such_method"))["error"]["code"] == -32601
        assert srv.handle({"id": 1})["error"]["code"] == -32700
        assert srv.handle(_rpc("plan"))["error"]["code"] == -32602
        bad_job = srv.handle(_rpc("plan", {"job": {"model": "gpt3-xl", "n_gpus": 0}}))
        assert bad_job["error"]["code"] == -32602
        bad_params = srv.handle(
            {"jsonrpc": "2.0", "id": 2, "method": "plan", "params": [1, 2]}
        )
        assert bad_params["error"]["code"] == -32602
        errors = srv.session.metrics()
        assert errors.get('serve.errors{method="plan"}', 0) >= 2

    def test_shutdown_sets_stop(self):
        srv = PlanningServer()
        assert not srv.stopped
        assert srv.handle(_rpc("shutdown"))["result"]["stopping"]
        assert srv.stopped

    def test_warm_start_serves_byte_identical_answers(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        requests = [
            _rpc("plan", {"job": {"model": "gpt3-xl", "n_gpus": 16}}, rid=1),
            _rpc("robust_plan", {
                "job": {"model": "gpt3-xl", "n_gpus": 16, "fidelity": "analytic-batch"},
                "scenarios": "collective-degraded",
            }, rid=2),
        ]

        def answers(server):
            docs = []
            for req in requests:
                result = server.handle(req)["result"]
                result.pop("stats")  # wall-seconds/hit counts are volatile
                docs.append(json.dumps(result, sort_keys=True))
            return docs

        cold_srv = PlanningServer(store=PersistentEvaluationStore(path=path))
        cold = answers(cold_srv)
        cold_srv.close()  # the kill: flush and drop the process state

        warm_srv = PlanningServer(store=PersistentEvaluationStore(path=path))
        assert warm_srv.store.loaded > 0
        warm = answers(warm_srv)
        assert warm == cold  # byte-identical answers
        s = warm_srv.store.stats()
        assert s["misses"] == 0  # served entirely from the warm store

    def test_stdio_transport_round_trip(self):
        srv = PlanningServer()
        lines = [
            json.dumps(_rpc("ping", rid=1)),
            json.dumps([_rpc("stats", rid=2), _rpc("ping", rid=3)]),
            "not json at all",
            json.dumps(_rpc("shutdown", rid=4)),
        ]
        stdout = io.StringIO()
        rc = serve_stdio(srv, io.StringIO("\n".join(lines) + "\n"), stdout,
                         request_workers=2)
        assert rc == 0
        responses = [json.loads(l) for l in stdout.getvalue().splitlines()]
        by_id = {}
        parse_errors = 0
        for r in responses:
            items = r if isinstance(r, list) else [r]
            for item in items:
                if item.get("id") is None:
                    parse_errors += 1
                    assert item["error"]["code"] == -32700
                else:
                    by_id[item["id"]] = item
        assert parse_errors == 1
        assert by_id[1]["result"]["ok"]
        assert by_id[2]["result"]["entries"] == 0
        assert by_id[3]["result"]["ok"]
        assert by_id[4]["result"]["stopping"]


# ---------------------------------------------------------------------------
# Monte-Carlo planning over the wire
# ---------------------------------------------------------------------------

class TestServeStochastic:
    MC_PARAMS = {
        "job": {"model": "gpt3-xl", "n_gpus": 16},
        "process": "flaky-links",
        "samples": 8,
        "seed": 7,
    }

    def test_mc_robust_plan_answers_and_slims_the_wire(self):
        srv = PlanningServer()
        result = srv.handle(_rpc("mc_robust_plan", self.MC_PARAMS))["result"]
        assert result["process"]["name"] == "flaky-links"
        assert result["fidelity"] == "analytic-batch"
        assert result["best"] is not None
        # per-candidate sample vectors stay server-side; the best entry
        # keeps its vector (nested under "best") for CI re-derivation
        assert all("sample_costs" not in e for e in result["entries"])
        assert len(result["best"]["sample_costs"]) == 8

    def test_replan_answers(self):
        srv = PlanningServer()
        result = srv.handle(_rpc("replan", {
            "job": {"model": "gpt3-2.7b", "n_gpus": 16},
            "failure": "skewed",
            "at": 0.3,
        }))["result"]
        assert result["decision"] == "re-partition"
        assert result["remaining_batches"] == pytest.approx(350.0)

    def test_missing_params_are_invalid_params(self):
        srv = PlanningServer()
        job = {"job": {"model": "gpt3-xl", "n_gpus": 16}}
        assert srv.handle(_rpc("mc_robust_plan", job))["error"]["code"] == -32602
        assert srv.handle(_rpc("replan", job))["error"]["code"] == -32602
        bad = srv.handle(_rpc("mc_robust_plan", {**self.MC_PARAMS, "process": "nope"}))
        assert bad["error"]["code"] == -32602

    def test_inline_process_document_accepted(self):
        from repro.stochastic import get_process

        srv = PlanningServer()
        inline = {**self.MC_PARAMS,
                  "process": get_process("flaky-links").to_dict()}
        by_doc = srv.handle(_rpc("mc_robust_plan", inline))["result"]
        by_name = srv.handle(_rpc("mc_robust_plan", self.MC_PARAMS))["result"]
        by_doc.pop("stats"), by_name.pop("stats")
        assert json.dumps(by_doc, sort_keys=True) == json.dumps(
            by_name, sort_keys=True
        )

    def test_sampled_scenario_cache_keys_round_trip_the_codec(self):
        srv = PlanningServer()
        srv.handle(_rpc("mc_robust_plan", self.MC_PARAMS))
        keys = list(srv.store._entries)
        assert keys
        for key in keys:
            decoded = decode_key(encode_key(key))
            assert decoded == key
            assert hash(decoded) == hash(key)
        # the matrix priced real scenario columns, not just the neutral one
        assert any("slow-ring-link" in json.dumps(encode_key(k)) for k in keys)

    def test_mc_warm_restart_serves_byte_identical_answers(self, tmp_path):
        path = tmp_path / "evals.jsonl"
        requests = [
            _rpc("mc_robust_plan", self.MC_PARAMS, rid=1),
            _rpc("replan", {
                "job": {"model": "gpt3-2.7b", "n_gpus": 16},
                "failure": "skewed", "at": 0.3,
            }, rid=2),
        ]

        def answers(server):
            docs = []
            for req in requests:
                result = server.handle(req)["result"]
                result.pop("stats", None)  # hit counts are volatile
                docs.append(json.dumps(result, sort_keys=True))
            return docs

        cold_srv = PlanningServer(store=PersistentEvaluationStore(path=path))
        cold = answers(cold_srv)
        cold_srv.close()

        warm_srv = PlanningServer(store=PersistentEvaluationStore(path=path))
        assert warm_srv.store.loaded > 0
        warm = answers(warm_srv)
        assert warm == cold  # byte-identical across the restart
        assert warm_srv.store.stats()["misses"] == 0

    def test_mc_over_stdio_transport(self):
        srv = PlanningServer()
        lines = [
            json.dumps(_rpc("mc_robust_plan",
                            {**self.MC_PARAMS, "samples": 4}, rid=1)),
            json.dumps(_rpc("shutdown", rid=2)),
        ]
        stdout = io.StringIO()
        rc = serve_stdio(srv, io.StringIO("\n".join(lines) + "\n"), stdout,
                         request_workers=2)
        assert rc == 0
        responses = [json.loads(l) for l in stdout.getvalue().splitlines()]
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["result"]["samples"] == 4
        assert by_id[1]["result"]["best"] is not None
        assert by_id[2]["result"]["stopping"]


# ---------------------------------------------------------------------------
# the max_workers satellite
# ---------------------------------------------------------------------------

class TestSessionMaxWorkers:
    def test_zero_raises(self):
        with pytest.raises(ValueError, match="max_workers"):
            Session(Machine.summit(), max_workers=0)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="max_workers"):
            Session(Machine.summit(), max_workers=-2)

    def test_default_and_explicit_still_work(self):
        assert Session(Machine.summit()).max_workers >= 1
        assert Session(Machine.summit(), max_workers=3).max_workers == 3
