"""Activation checkpointing: gradient equality with plain backward,
stochastic-segment replay, and the sublinear-memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import (
    Dropout,
    GELU,
    Linear,
    ReLU,
    Sequential,
    Tensor,
    checkpoint,
    checkpoint_sequential,
    no_grad,
    recompute_activation_bytes,
)


def _mlp(rng, depth=4, width=12):
    layers = []
    for _ in range(depth):
        layers += [Linear(width, width, rng=rng), GELU()]
    return Sequential(*layers)


def _grads(model):
    return [None if p.grad is None else p.grad.copy() for _, p in model.named_parameters()]


class TestCheckpointEquality:
    def test_parameter_grads_match_plain_backward(self, rng):
        model = _mlp(rng)
        x = Tensor(rng.standard_normal((5, 12)).astype(np.float32), requires_grad=True)

        model(x).sum().backward()
        want_param = _grads(model)
        want_input = x.grad.copy()

        model.zero_grad()
        x2 = Tensor(x.data.copy(), requires_grad=True)
        checkpoint(model, x2).sum().backward()

        for w, g in zip(want_param, _grads(model)):
            assert np.allclose(w, g, atol=1e-6)
        assert np.allclose(x2.grad, want_input, atol=1e-6)

    def test_forward_values_identical(self, rng):
        model = _mlp(rng, depth=2)
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        assert np.array_equal(model(x).data, checkpoint(model, x).data)

    def test_sequential_segments_match(self, rng):
        model = _mlp(rng, depth=6)
        x = Tensor(rng.standard_normal((4, 12)).astype(np.float32), requires_grad=True)

        model(x).sum().backward()
        want = _grads(model)

        for segments in (1, 2, 3, 6):
            model.zero_grad()
            x2 = Tensor(x.data.copy(), requires_grad=True)
            out = checkpoint_sequential(list(model.children()), x2, segments)
            out.sum().backward()
            for w, g in zip(want, _grads(model)):
                assert np.allclose(w, g, atol=1e-6), f"segments={segments}"

    def test_gradient_accumulation_across_calls(self, rng):
        """Two checkpointed backwards accumulate like two plain backwards."""
        model = _mlp(rng, depth=2)
        x = Tensor(rng.standard_normal((4, 12)).astype(np.float32))

        model(x).sum().backward()
        model(x).sum().backward()
        want = _grads(model)

        model.zero_grad()
        checkpoint(model, x).sum().backward()
        checkpoint(model, x).sum().backward()
        for w, g in zip(want, _grads(model)):
            assert np.allclose(w, g, atol=1e-6)

    def test_non_scalar_cotangent(self, rng):
        model = _mlp(rng, depth=2)
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32), requires_grad=True)
        g = rng.standard_normal((3, 12)).astype(np.float32)

        model(x).backward(g)
        want = x.grad.copy()
        x2 = Tensor(x.data.copy(), requires_grad=True)
        model.zero_grad()
        checkpoint(model, x2).backward(g)
        assert np.allclose(x2.grad, want, atol=1e-6)


class TestStochasticSegments:
    def test_dropout_replays_with_rng(self, rng):
        drop_rng = np.random.default_rng(99)
        model = Sequential(Linear(8, 8, rng=rng), Dropout(0.5, rng=drop_rng), ReLU())
        model.train()
        x = Tensor(rng.standard_normal((6, 8)).astype(np.float32), requires_grad=True)

        out = checkpoint(model, x, rngs=(drop_rng,))
        out.sum().backward()  # would raise / mismatch if the mask differed
        assert x.grad is not None

    def test_dropout_without_rng_detected(self, rng):
        """Unreplayed dropout makes recompute diverge; gradients then disagree
        with the forward activations — we can at least verify the documented
        failure is observable by comparing against the replayed path."""
        drop_rng = np.random.default_rng(5)
        model = Sequential(Linear(8, 8, rng=rng), Dropout(0.5, rng=drop_rng))
        model.train()
        x = Tensor(np.ones((4, 8), dtype=np.float32), requires_grad=True)

        out_replayed = checkpoint(model, x, rngs=(drop_rng,))
        out_replayed.sum().backward()
        g_replayed = x.grad.copy()

        # Fresh run, same seed, but no rng replay: gradient comes from a
        # *different* mask than the forward output.
        drop_rng2 = np.random.default_rng(5)
        model2 = Sequential(Linear(8, 8, rng=rng), Dropout(0.5, rng=drop_rng2))
        model2.train()
        for (_, p2), (_, p1) in zip(model2.named_parameters(), model.named_parameters()):
            p2.data[...] = p1.data
        x2 = Tensor(np.ones((4, 8), dtype=np.float32), requires_grad=True)
        out2 = checkpoint(model2, x2)  # no rngs passed
        out2.sum().backward()
        assert not np.allclose(x2.grad, g_replayed)

    def test_sequential_collects_dropout_rngs_automatically(self, rng):
        model = Sequential(
            Linear(8, 8, rng=rng),
            Dropout(0.5, rng=np.random.default_rng(1)),
            Linear(8, 8, rng=rng),
            Dropout(0.5, rng=np.random.default_rng(2)),
        )
        model.train()
        x = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
        out = checkpoint_sequential(list(model.children()), x, segments=2)
        out.sum().backward()
        assert x.grad is not None and np.all(np.isfinite(x.grad))


class TestCheckpointPlumbing:
    def test_no_grad_context_passthrough(self, rng):
        model = _mlp(rng, depth=2)
        x = Tensor(rng.standard_normal((2, 12)).astype(np.float32))
        with no_grad():
            out = checkpoint(model, x)
        assert out._backward is None and not out.requires_grad

    def test_non_tensor_return_raises(self):
        with pytest.raises(TypeError, match="must return a Tensor"):
            checkpoint(lambda t: t.data, Tensor(np.zeros(3)))

    def test_multi_input_segment(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)

        (a * b + a).sum().backward()
        wa, wb = a.grad.copy(), b.grad.copy()
        a.zero_grad(), b.zero_grad()

        checkpoint(lambda u, v: u * v + u, a, b).sum().backward()
        assert np.allclose(a.grad, wa) and np.allclose(b.grad, wb)

    def test_bad_segment_count(self, rng):
        model = _mlp(rng, depth=2)
        x = Tensor(np.zeros((1, 12), dtype=np.float32))
        with pytest.raises(ValueError, match="segments"):
            checkpoint_sequential(list(model.children()), x, segments=0)


class TestMemoryAccounting:
    def test_uniform_layers_sublinear(self):
        sizes = [100] * 16
        total, with_ckpt = recompute_activation_bytes(sizes, segments=4)
        assert total == 1600
        # 4 boundaries + one 4-layer segment interior
        assert with_ckpt == 4 * 100 + 4 * 100
        assert with_ckpt < total

    def test_single_segment_is_noop(self):
        sizes = [10, 20, 30]
        assert recompute_activation_bytes(sizes, 1) == (60, 60)

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 1000), min_size=2, max_size=40),
        segments=st.integers(2, 8),
    )
    def test_property_never_exceeds_total(self, sizes, segments):
        segments = min(segments, len(sizes))
        total, with_ckpt = recompute_activation_bytes(sizes, segments)
        assert with_ckpt <= total + max(sizes)  # boundary may double-count one layer
        assert with_ckpt > 0
