"""Thread-rank communicator: MPI semantics, determinism, grid layout."""

import numpy as np
import pytest

from repro.comm import CommError, Communicator, GridLayout, World, run_parallel


class TestCollectives:
    def test_allreduce_sum(self):
        def worker(comm):
            return comm.allreduce(np.full(4, float(comm.rank + 1)))

        for res in run_parallel(4, worker):
            assert np.allclose(res, 10.0)

    def test_allreduce_deterministic_across_runs(self):
        """Invariant 5: rank-ordered reduction is bitwise reproducible."""
        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.standard_normal(1000).astype(np.float32))

        r1 = run_parallel(4, worker)
        r2 = run_parallel(4, worker)
        assert all(np.array_equal(a, b) for a, b in zip(r1, r2))

    def test_allreduce_ops(self):
        def worker(comm):
            v = np.array([float(comm.rank)])
            return (
                comm.allreduce(v, op="max")[0],
                comm.allreduce(v, op="min")[0],
                comm.allreduce(v, op="mean")[0],
            )

        for mx, mn, mean in run_parallel(3, worker):
            assert (mx, mn, mean) == (2.0, 0.0, 1.0)

    def test_allreduce_shape_mismatch_raises(self):
        def worker(comm):
            return comm.allreduce(np.zeros(comm.rank + 1))

        with pytest.raises(CommError):
            run_parallel(2, worker)

    def test_bcast(self):
        def worker(comm):
            data = np.arange(5, dtype=np.float64) if comm.rank == 1 else None
            return comm.bcast(data, root=1)

        for res in run_parallel(3, worker):
            assert np.array_equal(res, np.arange(5))

    def test_gather_root_only(self):
        def worker(comm):
            return comm.gather(np.array([comm.rank]), root=0)

        res = run_parallel(3, worker)
        assert res[1] is None and res[2] is None
        assert [int(a[0]) for a in res[0]] == [0, 1, 2]

    def test_allgather(self):
        def worker(comm):
            return comm.allgather(np.array([comm.rank * 10]))

        for res in run_parallel(3, worker):
            assert [int(a[0]) for a in res] == [0, 10, 20]

    def test_sequenced_collectives_dont_collide(self):
        def worker(comm):
            a = comm.allreduce(np.array([1.0]))
            b = comm.allreduce(np.array([2.0]))
            return (a[0], b[0])

        for a, b in run_parallel(4, worker):
            assert (a, b) == (4.0, 8.0)


class TestPointToPoint:
    def test_ring_exchange(self):
        def worker(comm):
            dst = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            got = comm.sendrecv(dst, src, np.array([comm.rank]))
            return int(got[0])

        assert run_parallel(4, worker) == [3, 0, 1, 2]

    def test_fifo_per_channel(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.array([1.0]))
                comm.send(1, np.array([2.0]))
                return None
            return (comm.recv(0)[0], comm.recv(0)[0])

        assert run_parallel(2, worker)[1] == (1.0, 2.0)

    def test_tags_separate_channels(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.array([10.0]), tag=7)
                comm.send(1, np.array([20.0]), tag=3)
                return None
            # receive in reverse send order via tags
            return (comm.recv(0, tag=3)[0], comm.recv(0, tag=7)[0])

        assert run_parallel(2, worker)[1] == (20.0, 10.0)

    def test_send_buffer_semantics(self):
        """Mutating the source after send must not change the message."""
        def worker(comm):
            if comm.rank == 0:
                buf = np.array([5.0])
                comm.send(1, buf)
                buf[0] = -1.0
                return None
            return comm.recv(0)[0]

        assert run_parallel(2, worker)[1] == 5.0

    def test_self_send_rejected(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(0, np.array([1.0]))
            return None

        with pytest.raises(CommError):
            run_parallel(2, worker)

    def test_recv_timeout(self):
        def worker(comm):
            if comm.rank == 1:
                comm.recv(0, timeout=0.1)
            return None

        with pytest.raises(CommError):
            run_parallel(2, worker)

    def test_rank_failure_propagates(self):
        def worker(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(CommError, match="rank 1"):
            run_parallel(2, worker)


class TestWorldValidation:
    def test_bad_world_size(self):
        with pytest.raises(ValueError):
            World(0)

    def test_bad_rank(self):
        with pytest.raises(CommError):
            Communicator(World(2), 5)


class TestGridLayout:
    def test_decomposition(self):
        grid = GridLayout(8, g_inter=4)
        assert grid.g_data == 2
        assert grid.stage_of(5) == 1 and grid.replica_of(5) == 1
        assert grid.rank_at(1, 1) == 5

    def test_pipeline_and_data_groups_partition_world(self):
        grid = GridLayout(12, g_inter=3)
        pgs = {tuple(grid.pipeline_group(r)) for r in range(12)}
        dgs = {tuple(grid.data_group(r)) for r in range(12)}
        assert len(pgs) == 4 and len(dgs) == 3
        covered = sorted(r for g in pgs for r in g)
        assert covered == list(range(12))

    def test_groups_intersect_in_exactly_one_rank(self):
        grid = GridLayout(12, g_inter=3)
        for r in range(12):
            inter = set(grid.pipeline_group(r)) & set(grid.data_group(r))
            assert inter == {r}

    def test_neighbours(self):
        grid = GridLayout(6, g_inter=3)
        assert grid.prev_stage(0) is None and grid.next_stage(0) == 1
        assert grid.next_stage(2) is None and grid.prev_stage(2) == 1

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            GridLayout(10, g_inter=3)

    def test_rank_bounds(self):
        with pytest.raises(IndexError):
            GridLayout(4, 2).stage_of(4)
