"""Training loop, datasets, metrics, loss scaling, and end-to-end runs."""

import numpy as np
import pytest

from repro.core import SAMOConfig
from repro.comm import run_parallel
from repro.models import GPT, GPT_CONFIGS
from repro.parallel import DataParallelSAMOTrainer
from repro.pruning import EarlyBirdPruner, magnitude_prune
from repro.tensor import DynamicLossScaler
from repro.train import (
    BlobImages,
    CharCorpus,
    Trainer,
    batch_iterator,
    evaluate_accuracy,
    evaluate_perplexity,
    perplexity_from_loss,
)


class TestData:
    def test_corpus_deterministic(self):
        c1 = CharCorpus(vocab_size=64, length=2000, seed=3)
        c2 = CharCorpus(vocab_size=64, length=2000, seed=3)
        assert np.array_equal(c1.data, c2.data)

    def test_corpus_tokens_in_range(self):
        c = CharCorpus(vocab_size=50, length=3000, seed=0)
        assert c.data.min() >= 0 and c.data.max() < 50

    def test_batch_targets_shifted(self, rng):
        c = CharCorpus(vocab_size=64, length=5000, seed=0)
        x, y = c.sample_batch(4, 16, rng)
        assert x.shape == y.shape == (4, 16)
        # each target row equals the next characters of the input row
        src = c.train_data
        assert np.array_equal(x[0, 1:], y[0, :-1])

    def test_corpus_has_learnable_structure(self):
        c = CharCorpus(vocab_size=64, length=2000, seed=0)
        # entropy rate well below uniform log(64)
        assert c.entropy_rate_bound() < 0.8 * np.log(64)

    def test_val_split_disjoint_sampling(self, rng):
        c = CharCorpus(vocab_size=64, length=5000, seed=0)
        x, _ = c.sample_batch(2, 8, rng, split="val")
        assert x.shape == (2, 8)

    def test_too_short_corpus_raises(self, rng):
        c = CharCorpus(vocab_size=16, length=400, seed=0)
        with pytest.raises(ValueError):
            c.sample_batch(1, 500, rng)

    def test_blob_images(self, rng):
        d = BlobImages(num_classes=4, image_size=16, n=64, seed=0)
        x, y = d.sample_batch(8, rng)
        assert x.shape == (8, 3, 16, 16) and y.shape == (8,)
        assert y.max() < 4

    def test_batch_iterator_length(self):
        c = CharCorpus(vocab_size=32, length=2000, seed=0)
        assert len(list(batch_iterator(c, 2, 8, 5))) == 5


class TestMetrics:
    def test_perplexity_exp(self):
        assert perplexity_from_loss(0.0) == 1.0
        assert perplexity_from_loss(np.log(50)) == pytest.approx(50.0)

    def test_perplexity_overflow_clamped(self):
        assert np.isfinite(perplexity_from_loss(1e9))

    def test_evaluate_perplexity_near_vocab_at_init(self):
        cfg = GPT_CONFIGS["gpt3-tiny"]
        m = GPT(cfg, seed=0)
        c = CharCorpus(vocab_size=cfg.vocab_size, length=5000, seed=0)
        ppl = evaluate_perplexity(m, c, batch_size=2, seq_len=16, n_batches=2)
        assert 60 < ppl < 200  # vocab 128, untrained

    def test_evaluate_accuracy(self, rng):
        from repro.models import build_vgg

        d = BlobImages(num_classes=10, image_size=32, n=32, seed=0)
        acc = evaluate_accuracy(build_vgg("vgg-tiny"), d.images, d.labels)
        assert 0.0 <= acc <= 1.0


class TestLossScaler:
    def test_backoff_on_overflow(self):
        s = DynamicLossScaler(init_scale=1024)
        s.update(overflow=True)
        assert s.scale == 512

    def test_growth_after_interval(self):
        s = DynamicLossScaler(init_scale=8, growth_interval=3)
        for _ in range(3):
            s.update(overflow=False)
        assert s.scale == 16

    def test_overflow_detection(self):
        s = DynamicLossScaler()
        assert s.check_overflow([np.array([1.0, np.inf])])
        assert not s.check_overflow([np.array([1.0, 2.0]), None])

    def test_unscale(self):
        s = DynamicLossScaler(init_scale=4)
        g = np.array([8.0])
        s.unscale([g])
        assert g[0] == 2.0

    def test_bounds_respected(self):
        s = DynamicLossScaler(init_scale=2, min_scale=1.0)
        for _ in range(5):
            s.update(overflow=True)
        assert s.scale == 1.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            DynamicLossScaler(init_scale=0)


class TestTrainer:
    def test_samo_requires_mask(self):
        with pytest.raises(ValueError):
            Trainer(GPT(GPT_CONFIGS["gpt3-tiny"]), mode="samo")

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            Trainer(GPT(GPT_CONFIGS["gpt3-tiny"]), mode="fp8")

    def test_lr_schedule_applied(self):
        cfg = GPT_CONFIGS["gpt3-tiny"]
        c = CharCorpus(vocab_size=cfg.vocab_size, length=5000, seed=0)
        m = GPT(cfg, seed=0)
        seen = []
        t = Trainer(m, mode="dense", lr_schedule=lambda s: seen.append(s) or 1e-3)
        rng = np.random.default_rng(0)
        x, y = c.sample_batch(2, 8, rng)
        t.step(x, y)
        t.step(x, y)
        assert seen == [0, 1]

    def test_log_records(self):
        cfg = GPT_CONFIGS["gpt3-tiny"]
        c = CharCorpus(vocab_size=cfg.vocab_size, length=5000, seed=0)
        t = Trainer(GPT(cfg, seed=0), mode="dense")
        rng = np.random.default_rng(0)
        x, y = c.sample_batch(2, 8, rng)
        loss = t.step(x, y)
        assert t.log.losses == [loss]
        assert t.log.perplexities[0] == pytest.approx(np.exp(loss), rel=1e-6)


class TestEndToEnd:
    def test_figure4_style_parity(self):
        """Early-Bird prune at 90% then SAMO-train: final perplexity within
        a modest factor of the dense unpruned run (Fig. 4's parity claim,
        scaled down)."""
        cfg = GPT_CONFIGS["gpt3-tiny"]
        corpus = CharCorpus(vocab_size=cfg.vocab_size, length=30000, seed=0)
        rng = np.random.default_rng(0)
        n_iters = 30

        # dense run
        dense_model = GPT(cfg, seed=0)
        dense_tr = Trainer(dense_model, mode="dense",
                           config=SAMOConfig(optimizer="adamw", lr=3e-3))
        data_rng = np.random.default_rng(77)
        for _ in range(n_iters):
            x, y = corpus.sample_batch(8, 32, data_rng)
            dense_tr.step(x, y)
        ppl_dense = evaluate_perplexity(dense_model, corpus, 4, 32, n_batches=4)

        # early-bird ticket + SAMO run, same init and data order
        samo_model = GPT(cfg, seed=0)
        eb = EarlyBirdPruner(sparsity=0.9, epsilon=0.2, window=2)
        warm = Trainer(samo_model, mode="dense", config=SAMOConfig(optimizer="adamw", lr=3e-3))
        warm_rng = np.random.default_rng(5)
        for _ in range(3):
            for _ in range(2):
                x, y = corpus.sample_batch(8, 32, warm_rng)
                warm.step(x, y)
            eb.observe(samo_model)
            if eb.converged:
                break
        samo_tr = Trainer(samo_model, mode="samo", mask=eb.ticket,
                          config=SAMOConfig(optimizer="adamw", lr=3e-3))
        data_rng = np.random.default_rng(77)
        for _ in range(n_iters):
            x, y = corpus.sample_batch(8, 32, data_rng)
            samo_tr.step(x, y)
        ppl_samo = evaluate_perplexity(samo_model, corpus, 4, 32, n_batches=4)

        # both learned, and the pruned run is in the same ballpark
        assert ppl_dense < 100 and ppl_samo < 100
        assert ppl_samo < 1.6 * ppl_dense

    def test_data_parallel_samo_matches_single_process(self):
        """DP-SAMO over 2 ranks on split batches == single-process SAMO on
        the concatenated batch (gradient averaging correctness)."""
        cfg = GPT_CONFIGS["gpt3-tiny"]
        corpus = CharCorpus(vocab_size=cfg.vocab_size, length=10000, seed=0)
        rng = np.random.default_rng(0)
        xs, ys = corpus.sample_batch(4, 16, rng)

        # single-process reference on the full batch
        ref = GPT(cfg, seed=1)
        mask = magnitude_prune(ref, 0.9)
        ref_tr = Trainer(ref, mode="samo", mask=mask,
                         config=SAMOConfig(optimizer="adamw", lr=1e-3))
        ref_tr.step(xs, ys)

        def worker(comm):
            m = GPT(cfg, seed=1)
            msk = magnitude_prune(m, 0.9)
            tr = DataParallelSAMOTrainer(comm, m, msk,
                                         SAMOConfig(optimizer="adamw", lr=1e-3))
            sl = slice(comm.rank * 2, comm.rank * 2 + 2)
            tr.train_step(lambda mod, x, y: mod.loss(x, y), xs[sl], ys[sl])
            return [p.data.copy() for p in m.parameters()]

        ranks = run_parallel(2, worker)
        # ranks agree with each other bitwise
        for p0, p1 in zip(ranks[0], ranks[1]):
            assert np.array_equal(p0, p1)
        # and approximately with the single-process run (loss is a mean
        # over samples; per-shard grads averaged across ranks differ only
        # by fp16 rounding of the gradient compression)
        for p0, pr in zip(ranks[0], ref.parameters()):
            assert np.allclose(p0, pr.data, atol=2e-3)

    def test_overflow_step_skipping_end_to_end(self):
        cfg = GPT_CONFIGS["gpt3-tiny"]
        corpus = CharCorpus(vocab_size=cfg.vocab_size, length=5000, seed=0)
        m = GPT(cfg, seed=0)
        mask = magnitude_prune(m, 0.9)
        scaler = DynamicLossScaler(init_scale=2.0**40)  # force fp16 overflow
        t = Trainer(m, mode="samo", mask=mask, loss_scaler=scaler,
                    config=SAMOConfig(optimizer="adamw", lr=1e-3))
        rng = np.random.default_rng(0)
        x, y = corpus.sample_batch(2, 16, rng)
        t.step(x, y)
        assert t.log.skipped_steps == 1
        assert scaler.scale < 2.0**40  # backed off
