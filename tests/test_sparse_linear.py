"""SparseLinear: the functional Sputnik execution path."""

import numpy as np
import pytest

from repro.optim import Adam
from repro.sparse import FlatCOO, SparseLinear
from repro.tensor import Tensor, functional as F


def make_layer(rng, out_f=12, in_f=20, sparsity=0.8, bias=True):
    w = rng.standard_normal((out_f, in_f)).astype(np.float32)
    return SparseLinear.from_dense(w, sparsity, bias=bias), w


class TestForward:
    def test_matches_dense_linear(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.standard_normal((5, 20)).astype(np.float32))
        out = layer(x)
        ref = x.data @ layer.to_dense_weight().T + layer.bias.data
        assert np.allclose(out.data, ref, atol=1e-5)

    def test_from_dense_keeps_largest(self, rng):
        layer, w = make_layer(rng, sparsity=0.5)
        dense = layer.to_dense_weight()
        kept = np.abs(dense[dense != 0])
        dropped = np.abs(w.reshape(-1)[dense.reshape(-1) == 0])
        assert kept.min() >= dropped.max() - 1e-6

    def test_sparsity_level(self, rng):
        layer, _ = make_layer(rng, sparsity=0.9)
        assert layer.pattern.sparsity == pytest.approx(0.9, abs=0.01)

    def test_no_bias(self, rng):
        layer, _ = make_layer(rng, bias=False)
        assert layer.bias is None
        x = Tensor(rng.standard_normal((3, 20)).astype(np.float32))
        assert layer(x).shape == (3, 12)


class TestBackward:
    def test_value_grads_match_dense_gather(self, rng):
        """sDDMM weight gradient == dense dW gathered at the pattern."""
        layer, _ = make_layer(rng)
        x = Tensor(rng.standard_normal((6, 20)).astype(np.float32), requires_grad=True)
        out = layer(x)
        g = rng.standard_normal(out.shape).astype(np.float32)
        out.backward(g)
        dense_dw = g.T @ x.data
        assert np.allclose(layer.values.grad, dense_dw.reshape(-1)[layer.pattern.ind], atol=1e-4)

    def test_input_grads_match_dense(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.standard_normal((4, 20)).astype(np.float32), requires_grad=True)
        out = layer(x)
        g = np.ones(out.shape, np.float32)
        out.backward(g)
        assert np.allclose(x.grad, g @ layer.to_dense_weight(), atol=1e-4)

    def test_bias_grad(self, rng):
        layer, _ = make_layer(rng)
        x = Tensor(rng.standard_normal((7, 20)).astype(np.float32))
        layer(x).sum().backward()
        assert np.allclose(layer.bias.grad, 7.0)

    def test_finite_difference(self, gradcheck, rng):
        layer, _ = make_layer(rng, out_f=4, in_f=6, sparsity=0.5)
        x = rng.standard_normal((3, 6)).astype(np.float64)

        def f(vals):
            saved = layer.values.data.copy()
            layer.values.data[...] = vals.astype(np.float32)
            out = float(layer(Tensor(x.astype(np.float32))).data.sum())
            layer.values.data[...] = saved
            return out

        out = layer(Tensor(x.astype(np.float32)))
        out.sum().backward()
        num = gradcheck(f, layer.values.data.astype(np.float64), eps=1e-3)
        assert np.allclose(layer.values.grad, num, atol=1e-2)


class TestTraining:
    def test_trains_to_fit_random_targets(self, rng):
        layer, _ = make_layer(rng, out_f=8, in_f=10, sparsity=0.6)
        x = Tensor(rng.standard_normal((16, 10)).astype(np.float32))
        y = rng.integers(0, 8, size=16)
        opt = Adam(list(layer.parameters()), lr=0.05)
        losses = []
        for _ in range(40):
            opt.zero_grad()
            loss = F.cross_entropy(layer(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]

    def test_pattern_frozen_during_training(self, rng):
        layer, _ = make_layer(rng)
        ind_before = layer.pattern.ind.copy()
        x = Tensor(rng.standard_normal((4, 20)).astype(np.float32))
        opt = Adam(list(layer.parameters()), lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            layer(x).sum().backward()
            opt.step()
        assert np.array_equal(layer.pattern.ind, ind_before)
        # dense view still has zeros exactly at pruned positions
        dense = layer.to_dense_weight()
        keep = np.zeros(dense.size, bool)
        keep[layer.pattern.ind] = True
        assert np.all(dense.reshape(-1)[~keep] == 0.0)

    def test_only_nnz_params_exist(self, rng):
        """The optimizer state is proportional to nnz, not the dense size —
        the memory upside the Sputnik baseline does get."""
        layer, _ = make_layer(rng, sparsity=0.9)
        n_params = sum(p.size for p in layer.parameters())
        assert n_params == layer.pattern.nnz + layer.out_features
