"""The repro.api facade: Job/Machine/ScenarioSet, Session, registry."""

import json

import pytest

from repro.api import (
    SCENARIO_SETS,
    ClusterScenario,
    Job,
    Machine,
    RobustPlanResult,
    ScenarioSet,
    Session,
    available_fidelities,
    get_scenario_set,
    make_estimator,
    register_estimator,
)
from repro.autotune import (
    AnalyticEstimator,
    EvaluationCache,
    Planner,
    SimulatorEstimator,
)
from repro.autotune.estimator import _ESTIMATOR_REGISTRY
from repro.models import get_spec
from repro.parallel import simulate_batch
from repro.parallel.scenarios import resolve_fidelity


# ---------------------------------------------------------------------------
# Job
# ---------------------------------------------------------------------------

class TestJob:
    def test_round_trip_serialization(self):
        job = Job(
            model="gpt3-2.7b", n_gpus=256, framework="axonn+samo",
            sparsity=0.8, mbs=2, partition_mode="time", fidelity="sim",
        )
        assert Job.from_dict(job.to_dict()) == job
        # and through actual JSON text
        assert Job.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_cache_key_stable_across_equivalent_jobs(self):
        a = Job(model="gpt3-xl", n_gpus=64, framework="axonn", mbs=1)
        b = Job(model="gpt3-xl", n_gpus=64)  # same values via defaults
        assert a == b and hash(a) == hash(b)
        assert a.cache_key() == b.cache_key()
        assert a.canonical_hash() == b.canonical_hash()
        c = a.with_(mbs=2)
        assert c.canonical_hash() != a.canonical_hash()

    def test_validation(self):
        with pytest.raises(ValueError, match="n_gpus"):
            Job(model="gpt3-xl", n_gpus=0)
        with pytest.raises(ValueError, match="sparsity"):
            Job(model="gpt3-xl", n_gpus=8, sparsity=1.5)
        with pytest.raises(ValueError, match="partition_mode"):
            Job(model="gpt3-xl", n_gpus=8, partition_mode="bytes")
        with pytest.raises(ValueError, match="unknown framework"):
            Job(model="gpt3-xl", n_gpus=8, framework="megatron")


class TestMachine:
    def test_budget_folds_into_calibration(self):
        m = Machine.summit(budget_gb=12)
        assert m.gpu_memory_bytes == 12 * 1024**3
        assert m.canonical_hash() != Machine().canonical_hash()
        # equal budgets -> equal machines -> equal hashes
        assert m.canonical_hash() == Machine.summit(budget_gb=12).canonical_hash()

    def test_round_trip_serialization(self):
        m = Machine.summit(budget_gb=12)
        back = Machine.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m

    def test_topology(self):
        topo = Machine().topology(12)
        assert topo.n_nodes == 2


# ---------------------------------------------------------------------------
# ScenarioSet
# ---------------------------------------------------------------------------

class TestScenarioSet:
    def test_named_sets_resolve(self):
        s = get_scenario_set("mixed-degraded")
        assert s.name == "mixed-degraded"
        assert abs(sum(s.weights) - 1.0) < 1e-12
        with pytest.raises(ValueError, match="unknown scenario set"):
            get_scenario_set("apocalypse")

    def test_neutral_scenarios_canonicalise_to_none(self):
        s = ScenarioSet.of("uniform", "straggler")
        assert s.scenarios[0] is None  # 'uniform' is the identity transform
        assert s.scenarios[1].name == "straggler"
        assert not s.is_neutral_only
        assert SCENARIO_SETS["neutral"].is_neutral_only

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ScenarioSet("bad", (("straggler", 0.0),))
        with pytest.raises(ValueError, match="must not be empty"):
            ScenarioSet("empty", ())
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSet.of("straggler", "straggler")

    def test_round_trip_serialization(self):
        s = get_scenario_set("mixed-degraded")
        back = ScenarioSet.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back.labels() == s.labels()
        assert back.weights == s.weights
        assert back.scenarios == s.scenarios


# ---------------------------------------------------------------------------
# estimator registry
# ---------------------------------------------------------------------------

class TestEstimatorRegistry:
    def test_builtin_fidelities_present(self):
        assert {"analytic", "sim"} <= set(available_fidelities())

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            make_estimator("exact", get_spec("gpt3-xl"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_estimator("sim", lambda *a, **k: None)

    def test_new_fidelity_plugs_in(self):
        class EagerEstimator(AnalyticEstimator):
            fidelity = "eager-test"

        register_estimator(
            "eager-test",
            lambda spec, cal, *, scenario=None, partition_mode="flops": (
                EagerEstimator(spec, cal)
            ),
        )
        try:
            est = make_estimator("eager-test", get_spec("gpt3-xl"))
            assert isinstance(est, EagerEstimator)
            assert "eager-test" in available_fidelities()
        finally:
            del _ESTIMATOR_REGISTRY["eager-test"]

    def test_factory_swallowing_scenario_rejected(self):
        """A backend whose factory drops the scenario must raise, not
        silently price (and cache) the pristine machine."""
        register_estimator(
            "forgetful-test",
            lambda spec, cal, *, scenario=None, partition_mode="flops": (
                SimulatorEstimator(spec, cal)  # scenario not passed through
            ),
        )
        try:
            with pytest.raises(ValueError, match="ignored the requested scenario"):
                make_estimator(
                    "forgetful-test", get_spec("gpt3-xl"), scenario="straggler"
                )
            # without a scenario the backend works normally
            assert make_estimator("forgetful-test", get_spec("gpt3-xl"))
        finally:
            del _ESTIMATOR_REGISTRY["forgetful-test"]


# ---------------------------------------------------------------------------
# the scenario/fidelity contradiction raises at every entry point
# ---------------------------------------------------------------------------

class TestAnalyticScenarioConflict:
    MSG = "event-driven engine"

    def test_shared_validator(self):
        with pytest.raises(ValueError, match=self.MSG):
            resolve_fidelity("analytic", "straggler")
        # unspecified fidelity + scenario = sim (the legacy convenience)
        fid, sc = resolve_fidelity(None, "straggler")
        assert fid == "sim" and sc.name == "straggler"
        assert resolve_fidelity(None, None) == ("analytic", None)

    def test_simulate_batch_raises_on_explicit_conflict(self):
        with pytest.raises(ValueError, match=self.MSG):
            simulate_batch(
                get_spec("gpt3-xl"), 64, "axonn",
                pipeline_fidelity="analytic", scenario="straggler",
            )

    def test_direct_estimator_construction_raises(self):
        """The constructor contract: no post-hoc silently-ignored scenario."""
        with pytest.raises(ValueError, match=self.MSG):
            AnalyticEstimator(get_spec("gpt3-xl"), scenario="straggler")
        # the sim estimator accepts and resolves the same argument
        est = SimulatorEstimator(get_spec("gpt3-xl"), scenario="straggler")
        assert est.scenario.name == "straggler"

    def test_factory_raises(self):
        with pytest.raises(ValueError, match=self.MSG):
            make_estimator("analytic", get_spec("gpt3-xl"), scenario="straggler")

    def test_planner_raises(self):
        with pytest.raises(ValueError, match=self.MSG):
            Planner("gpt3-xl", 32, fidelity="analytic", scenario="straggler")

    def test_session_raises(self):
        job = Job(model="gpt3-xl", n_gpus=32, fidelity="analytic")
        with pytest.raises(ValueError, match=self.MSG):
            Session(Machine()).plan(job, scenario="straggler")
        with pytest.raises(ValueError, match=self.MSG):
            Session(Machine()).robust_plan(job, "mixed-degraded")

    def test_cli_raises(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="event-driven engine"):
            main(["plan", "--model", "gpt3-xl", "--gpus", "32",
                  "--fidelity", "analytic", "--scenarios", "mixed-degraded"])

    def test_analytic_rejects_time_partitioning(self):
        job = Job(model="gpt3-xl", n_gpus=32, fidelity="analytic",
                  partition_mode="time")
        with pytest.raises(ValueError, match="time-balanced"):
            Session(Machine()).plan(job)
        # breakdown agrees with plan: same Job, same rejection
        with pytest.raises(ValueError, match="time-balanced"):
            Session(Machine()).breakdown(job)
        with pytest.raises(ValueError, match="time-balanced"):
            simulate_batch(
                get_spec("gpt3-xl"), 32, "axonn",
                pipeline_fidelity="analytic", partition_mode="time",
            )
        # unset fidelity + time partitioning still works through the sim path
        b = Session(Machine()).breakdown(
            job.with_(fidelity="sim"), scenario="straggler"
        )
        assert b.total > 0

    def test_trace_rejects_unknown_fidelity(self):
        job = Job(model="gpt3-xl", n_gpus=64, fidelity="bogus")
        with pytest.raises(ValueError, match="unknown pipeline_fidelity"):
            Session(Machine()).trace(job)

    def test_cli_rejects_scenario_scenarios_combination(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["plan", "--model", "gpt3-xl", "--gpus", "32",
                  "--scenarios", "neutral", "--scenario", "straggler"])

    def test_identity_collective_straggler_is_neutral(self):
        """A straggler rank with the default factor 1.0 degrades nothing
        and must canonicalise away like every other identity knob."""
        idle = ClusterScenario("idle-straggler", coll_straggler_rank=0)
        assert not idle.degrades_collectives
        assert idle.is_neutral
        assert ScenarioSet.of(idle).is_neutral_only


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------

class TestSessionBreakdownAndTrace:
    def test_breakdown_matches_legacy_wrapper(self):
        spec = get_spec("gpt3-xl")
        job = Job(model="gpt3-xl", n_gpus=64, framework="axonn+samo")
        assert (
            Session(Machine()).breakdown(job).total
            == simulate_batch(spec, 64, "axonn+samo").total
        )

    def test_trace_exposes_schedule(self):
        job = Job(model="gpt3-xl", n_gpus=64, framework="axonn", fidelity="sim")
        trace = Session(Machine()).trace(job)
        assert trace.g_inter >= 1
        assert trace.makespan > 0
        # the batch engine's sim bubble is this trace's exposed cost
        b = Session(Machine()).breakdown(job)
        m = b.config.microbatches
        t_f, t_b = b.notes["t_f"], b.notes["t_b"]
        assert b.bubble == pytest.approx(
            max(trace.makespan - m * (t_f + t_b), 0.0)
        )

    def test_trace_rejects_cnn(self):
        job = Job(model="vgg19", n_gpus=16)
        with pytest.raises(ValueError, match="no pipeline"):
            Session(Machine()).trace(job)


class TestRobustPlan:
    def test_neutral_set_degenerates_to_plan(self):
        """Acceptance: neutral-only robust ranking == plain sim ranking."""
        session = Session(Machine(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=32, fidelity="sim")
        robust = session.robust_plan(job, "neutral", microbatch_sizes=(1,))
        plain = session.plan(job, microbatch_sizes=(1,))
        assert [e.config for e in robust.feasible] == [
            e.config for e in plain.feasible
        ]
        for r, p in zip(robust.feasible, plain.feasible):
            assert r.expected_time == p.total_time  # bit-identical
            assert r.worst_time == p.total_time
        assert robust.best.config == plain.best.config

    def test_expected_between_best_and_worst(self):
        session = Session(Machine(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=32)
        sset = ScenarioSet.of("uniform", "straggler", weights=(0.5, 0.5))
        res = session.robust_plan(job, sset, microbatch_sizes=(1,))
        assert isinstance(res, RobustPlanResult)
        for e in res.entries:
            lo, hi = min(e.per_scenario.values()), max(e.per_scenario.values())
            assert lo <= e.expected_time <= hi
            assert e.worst_time == hi
            assert e.per_scenario[e.worst_scenario] == hi

    def test_evaluations_shared_through_cache(self):
        """Per-(config, scenario) evaluations are reused across calls."""
        cache = EvaluationCache()
        session = Session(Machine(), cache=cache)
        job = Job(model="gpt3-xl", n_gpus=32)
        session.robust_plan(job, "collective-degraded", microbatch_sizes=(1,))
        misses_before = cache.stats()["misses"]
        session.robust_plan(job, "collective-degraded", microbatch_sizes=(1,))
        assert cache.stats()["misses"] == misses_before  # all hits
        # an overlapping single-scenario plan also reuses entries
        session.plan(
            job.with_(fidelity="sim"), scenario="degraded-ring",
            microbatch_sizes=(1,),
        )
        assert cache.stats()["misses"] == misses_before

    def test_fidelity_is_job_level_not_first_scenario_label(self):
        session = Session(Machine(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=32)
        sset = ScenarioSet.of("straggler", "slow-link")
        res = session.robust_plan(job, sset, microbatch_sizes=(1,))
        assert res.fidelity == "sim"  # not "sim@straggler"
        # neutral-only set resolves to the default analytic engine
        neutral = session.robust_plan(job, "neutral", microbatch_sizes=(1,))
        assert neutral.fidelity == "analytic"

    def test_cli_neutral_set_uses_robust_plan_fidelity_rule(self, capsys):
        from repro.cli import main

        assert main(["plan", "--model", "gpt3-xl", "--gpus", "64",
                     "--scenarios", "neutral", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["fidelity"] == "analytic"

    def test_report_and_json(self):
        session = Session(Machine(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=32)
        res = session.robust_plan(job, "neutral", microbatch_sizes=(1,))
        text = res.report()
        assert "Best expected config" in text
        d = json.loads(json.dumps(res.to_dict()))
        assert d["model"] == "gpt3-xl"
        assert d["best"]["expected_time"] == res.best.expected_time
        assert len(d["entries"]) == len(res.entries)


# ---------------------------------------------------------------------------
# serialization of plans and breakdowns
# ---------------------------------------------------------------------------

class TestSerialization:
    def test_breakdown_round_trip(self):
        from repro.parallel import BatchBreakdown

        b = simulate_batch(get_spec("gpt3-xl"), 64, "axonn+samo")
        d = json.loads(json.dumps(b.to_dict()))
        back = BatchBreakdown.from_dict(d)
        assert back.total == b.total
        assert back.to_dict() == b.to_dict()

    def test_plan_result_round_trip(self):
        from repro.autotune import PlanResult

        res = Session(Machine(), cache=EvaluationCache()).plan(
            Job(model="gpt3-xl", n_gpus=32), microbatch_sizes=(1,)
        )
        d = json.loads(json.dumps(res.to_dict()))
        back = PlanResult.from_dict(d)
        assert back.best.config == res.best.config
        assert back.best.total_time == res.best.total_time
        assert len(back.evaluations) == len(res.evaluations)
        assert back.stats.candidates == res.stats.candidates

    def test_cli_json_output_parses(self, capsys):
        from repro.cli import main

        assert main(["plan", "--model", "gpt3-xl", "--gpus", "64", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["model"] == "gpt3-xl" and d["fidelity"] == "analytic"
        assert d["best"] is not None
