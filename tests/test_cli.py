"""CLI: every experiment subcommand prints its paper-style series."""

import pytest

from repro.cli import EXPERIMENTS, main


FAST_COMMANDS = ["fig1", "fig2", "fig3", "fig8", "table1", "table2", "memory", "simulate"]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists_and_fails(self, capsys):
        assert main([]) == 2
        assert "Available experiments" in capsys.readouterr().out

    @pytest.mark.parametrize("cmd", FAST_COMMANDS)
    def test_fast_commands_run(self, cmd, capsys):
        assert main([cmd]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3

    def test_fig1_shows_paper_band(self, capsys):
        main(["fig1"])
        out = capsys.readouterr().out
        assert "6.5x" in out and "22.0x" in out  # the paper's 6-22x band

    def test_fig3_bubble_units(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert "6, 6, 6" in out  # bubble = (G-1)(t_f + t_b) = 6 on each GPU

    def test_memory_claim(self, capsys):
        main(["memory"])
        out = capsys.readouterr().out
        assert "gpt3-2.7b" in out
        assert "74%" in out  # the headline saving

    def test_memory_sparsity_flag(self, capsys):
        main(["memory", "--sparsity", "0.8"])
        out = capsys.readouterr().out
        assert "p=0.8" in out

    def test_fig6_single_model_flag(self, capsys):
        main(["fig6", "--model", "gpt3-xl"])
        out = capsys.readouterr().out
        assert "gpt3-xl" in out and "gpt3-2.7b" not in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestSimulateCommand:
    def test_uniform_preset_reports_eq7_parity(self, capsys):
        assert main(["simulate", "--preset", "uniform"]) == 0
        out = capsys.readouterr().out
        # free messages + uniform stages: mean idle equals the Eq. 6-7 bubble
        assert "mean idle: 9.000 s  (uniform-limit Eq. 6-7 bubble: 9.000 s)" in out

    @pytest.mark.parametrize("preset", ["straggler", "slow-link", "skewed", "contention"])
    def test_presets_run(self, preset, capsys):
        assert main(["simulate", "--preset", preset]) == 0
        out = capsys.readouterr().out
        assert f"Scenario '{preset}'" in out
        assert "makespan" in out

    def test_custom_geometry(self, capsys):
        assert main([
            "simulate", "--preset", "straggler", "--g-inter", "6",
            "--microbatches", "12", "--msg-time", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "G_inter=6, m=12" in out

    def test_plan_scenario_requires_sim(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "gpt3-xl", "--gpus", "32",
                  "--scenario", "straggler"])


class TestTraceCommand:
    """``repro trace`` + the ``--metrics`` riders (repro.obs wiring)."""

    def test_trace_runs_and_reports_spans(self, capsys):
        assert main(["trace", "--model", "gpt3-xl", "--gpus", "32"]) == 0
        out = capsys.readouterr().out
        assert "Spans by category" in out
        assert "pipeline.forward" in out and "event" in out

    def test_trace_chrome_export_is_valid(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "--model", "gpt3-xl", "--gpus", "32",
                     "--chrome", str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid" in out and "INVALID" not in out
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_trace_metrics_flag(self, capsys):
        assert main(["trace", "--model", "gpt3-xl", "--gpus", "32",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "events.processed" in out

    def test_simulate_metrics_flag(self, capsys):
        assert main(["simulate", "--preset", "straggler", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "events.processed" in out

    def test_plan_json_metrics_block(self, capsys):
        import json

        assert main(["plan", "--model", "gpt3-xl", "--gpus", "32",
                     "--json", "--metrics"]) == 0
        doc = json.loads(capsys.readouterr().out)
        m = doc["metrics"]
        assert (m["planner.cache.hits"] + m["planner.cache.misses"]
                == m["planner.candidates"])


class TestMCPlanCommand:
    ARGS = ["mc-plan", "--process", "flaky-links",
            "--samples", "8", "--seed", "7"]

    def test_report_runs(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "MC robust plan" in out
        assert "flaky-links" in out

    def test_json_byte_identical_across_invocations(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # same seed, fresh session: same bytes
        import json as _json

        doc = _json.loads(first)
        assert doc["seed"] == 7 and doc["samples"] == 8
        assert doc["best"] is not None

    def test_replan_rider(self, capsys):
        assert main(["mc-plan", "--model", "gpt3-2.7b", "--process", "calm",
                     "--samples", "2", "--replan", "skewed",
                     "--replan-at", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Re-plan decision" in out

    def test_bad_process_exits_cleanly(self):
        # argparse guards --process via choices; --replan is free-form
        # and exercises the runner's own error path
        with pytest.raises(SystemExit) as exc:
            main(["mc-plan", "--process", "definitely-not-a-process"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit, match="mc-plan: error"):
            main(["mc-plan", "--model", "gpt3-2.7b", "--process", "calm",
                  "--samples", "2", "--replan", "not-a-scenario"])

    def test_metrics_flag(self, capsys):
        assert main(self.ARGS + ["--samples", "4", "--json",
                                 "--metrics"]) == 0
        import json as _json

        doc = _json.loads(capsys.readouterr().out)
        assert doc["metrics"]["mc.samples"] == 4
