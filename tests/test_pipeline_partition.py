"""Pipeline schedule simulation (Fig. 3) and partitioner / G_inter choice."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import SUMMIT
from repro.models import get_spec, gpt_spec
from repro.parallel import (
    StorageMode,
    activation_bytes_per_gpu,
    balanced_partition,
    bubble_time,
    choose_g_inter,
    memory_per_gpu,
    model_state_bytes,
    simulate_pipeline,
)


class TestPipelineSimulation:
    def test_figure3_exactly(self):
        """G=3, 5 microbatches, t_b = 2 t_f: bubble = 6 units per GPU."""
        tr = simulate_pipeline(3, 5, 1.0, 2.0)
        assert tr.makespan == 21.0
        for g in range(3):
            assert tr.idle_time(g) == pytest.approx(6.0)
            assert tr.busy_time(g) == pytest.approx(15.0)

    @settings(max_examples=30, deadline=None)
    @given(
        g=st.integers(1, 8),
        m_extra=st.integers(0, 12),
        tf=st.floats(0.5, 3.0),
        tb_mult=st.floats(1.0, 3.0),
    )
    def test_property_bubble_matches_eq7(self, g, m_extra, tf, tb_mult):
        """Invariant 4: with m >= G and free messages, per-GPU idle equals
        (G-1)(t_f + t_b) — the paper's Eq. 6/7 numerator."""
        m = g + m_extra
        tb = tf * tb_mult
        tr = simulate_pipeline(g, m, tf, tb)
        expected_idle = (g - 1) * (tf + tb)
        for gpu in range(g):
            assert tr.idle_time(gpu) == pytest.approx(expected_idle, rel=1e-6)

    def test_makespan_formula(self):
        """makespan = (m + G - 1) (t_f+t_b) for uniform 1F1B."""
        for g, m in [(2, 4), (4, 8), (5, 5)]:
            tr = simulate_pipeline(g, m, 1.0, 2.0)
            assert tr.makespan == pytest.approx((m + g - 1) * 3.0)

    def test_single_stage_no_bubble(self):
        tr = simulate_pipeline(1, 6, 1.0, 2.0)
        assert tr.idle_time(0) == 0.0

    def test_messages_delay_makespan(self):
        fast = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=0.0)
        slow = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=0.5)
        assert slow.makespan > fast.makespan

    def test_all_tasks_executed_once(self):
        tr = simulate_pipeline(4, 6, 1.0, 2.0)
        fwd = [(t.gpu, t.microbatch) for t in tr.tasks if t.kind == "F"]
        assert len(fwd) == len(set(fwd)) == 24

    def test_ascii_render(self):
        art = simulate_pipeline(3, 5, 1.0, 2.0).ascii(1.0)
        assert art.count("GPU") == 3 and "[0]" in art

    def test_bubble_monotone_in_g(self):
        """Eq. 8: bubble strictly increases with G_inter."""
        idles = [simulate_pipeline(g, 16, 1.0 / g, 2.0 / g).idle_time(0) for g in (2, 4, 8)]
        assert idles == sorted(idles) and idles[0] < idles[-1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_pipeline(0, 4, 1.0, 1.0)


class TestBubbleFormula:
    def test_eq7_values(self):
        assert bubble_time(1, 1.0, 2.0) == 0.0
        assert bubble_time(3, 1.0, 2.0) == pytest.approx(2.0)
        assert bubble_time(8, 1.0, 3.0) == pytest.approx(3.5)

    def test_monotone(self):
        vals = [bubble_time(g, 1.0, 2.0) for g in range(1, 64)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_diminishing_returns(self):
        """Eq. 8's 1/G^2 gradient: increments shrink with G."""
        d1 = bubble_time(2, 1, 2) - bubble_time(1, 1, 2)
        d2 = bubble_time(32, 1, 2) - bubble_time(31, 1, 2)
        assert d2 < d1


class TestStorageModes:
    def test_dense_is_20phi(self):
        spec = get_spec("gpt3-2.7b")
        assert model_state_bytes(spec, StorageMode.DENSE) == 20 * spec.param_count

    def test_samo_much_smaller_at_p09(self):
        spec = get_spec("gpt3-2.7b")
        dense = model_state_bytes(spec, StorageMode.DENSE)
        samo = model_state_bytes(spec, StorageMode.SAMO, sparsity=0.9)
        assert 0.20 < samo / dense < 0.25  # 22% of dense (78% saving)

    def test_sparse_kernel_smallest(self):
        spec = get_spec("gpt3-2.7b")
        assert model_state_bytes(spec, StorageMode.SPARSE_KERNEL, 0.9) < model_state_bytes(
            spec, StorageMode.SAMO, 0.9
        )

    def test_zero1_shards_optimizer(self):
        spec = get_spec("gpt3-2.7b")
        z1 = model_state_bytes(spec, StorageMode.ZERO1, g_data=1)
        z64 = model_state_bytes(spec, StorageMode.ZERO1, g_data=64)
        assert z64 < z1
        assert z1 == pytest.approx(20 * spec.param_count, rel=0.01)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown storage mode"):
            model_state_bytes(get_spec("gpt3-xl"), "fancy")

    def test_storage_mode_enum_backward_compat(self):
        """Members are real Enum values but still equal their strings."""
        assert StorageMode.DENSE == "dense"
        assert StorageMode("samo") is StorageMode.SAMO
        assert str(StorageMode.SPARSE_KERNEL) == "sparse_kernel"
        spec = get_spec("gpt3-xl")
        assert model_state_bytes(spec, "dense") == model_state_bytes(
            spec, StorageMode.DENSE
        )


class TestGInterSelection:
    def test_paper_configuration_2p7b(self):
        """Dense 2.7B needs G_inter=8; SAMO needs 2 (Fig. 8 consistency)."""
        spec = get_spec("gpt3-2.7b")
        assert choose_g_inter(spec, 128, StorageMode.DENSE) == 8
        assert choose_g_inter(spec, 128, StorageMode.SAMO, sparsity=0.9) == 2

    def test_samo_reduces_g_inter_for_all_gpts(self):
        for name in ("gpt3-xl", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b"):
            spec = get_spec(name)
            g = spec.batch_size  # enough GPUs that divisibility is easy
            dense = choose_g_inter(spec, g, StorageMode.DENSE)
            samo = choose_g_inter(spec, g, StorageMode.SAMO, sparsity=0.9)
            assert samo < dense, name

    def test_cnn_fits_one_gpu(self):
        assert choose_g_inter(get_spec("vgg19"), 16, StorageMode.DENSE) == 1

    def test_infeasible_raises(self):
        spec = get_spec("gpt3-13b")
        with pytest.raises(RuntimeError):
            choose_g_inter(spec, 1, StorageMode.DENSE)  # 13B on one V100

    def test_memory_per_gpu_decreases_with_g_inter(self):
        spec = get_spec("gpt3-6.7b")
        m = [memory_per_gpu(spec, g, StorageMode.DENSE) for g in (8, 16, 32)]
        assert m == sorted(m, reverse=True)

    def test_activation_bytes_scale_with_mbs(self):
        spec = get_spec("gpt3-xl")
        assert activation_bytes_per_gpu(spec, 2) == 2 * activation_bytes_per_gpu(spec, 1)


class TestPartitionerEdgeCases:
    """Non-power-of-two machines, infeasible budgets, break-even sparsity."""

    def test_non_power_of_two_gpus_with_pow2_batch_infeasible(self):
        """96 = 2^5 * 3 GPUs with the paper's batch of 512: every
        power-of-two G_inter leaves a G_data with a factor of 3, which
        cannot divide a power-of-two batch — correctly diagnosed as
        infeasible rather than silently misplacing microbatches."""
        spec = get_spec("gpt3-2.7b")
        with pytest.raises(RuntimeError, match="no feasible G_inter"):
            choose_g_inter(spec, 96, StorageMode.SAMO, sparsity=0.9)

    def test_non_power_of_two_gpus_with_matching_batch(self):
        """With a batch divisible by the odd factor (480 = 2^5*3*5), the
        96-GPU machine becomes schedulable at the usual SAMO depth."""
        spec = get_spec("gpt3-2.7b")
        spec.batch_size = 480
        g = choose_g_inter(spec, 96, StorageMode.SAMO, sparsity=0.9)
        assert 96 % g == 0
        assert g == 2  # same depth the 128-GPU machine needs

    def test_infeasible_memory_budget_raises(self):
        from repro.cluster.calibration import with_memory_budget

        spec = get_spec("gpt3-2.7b")
        tiny = with_memory_budget(6.0)  # barely above framework overhead
        with pytest.raises(RuntimeError, match="no feasible G_inter"):
            choose_g_inter(spec, 128, StorageMode.DENSE, cal=tiny)
        # SAMO still fits the same machine: the paper's headline effect
        assert choose_g_inter(spec, 128, StorageMode.SAMO, 0.9, cal=tiny) >= 2

    def test_break_even_sparsity_boundary(self):
        """At p = BREAK_EVEN_SPARSITY (0.25), SAMO storage equals dense
        (Eq. 5: savings (24p - 6)phi = 0); below it, SAMO costs memory."""
        from repro.core import BREAK_EVEN_SPARSITY

        spec = get_spec("gpt3-2.7b")
        dense = model_state_bytes(spec, StorageMode.DENSE)
        at_be = model_state_bytes(spec, StorageMode.SAMO, BREAK_EVEN_SPARSITY)
        assert at_be == pytest.approx(dense, rel=1e-9)
        below = model_state_bytes(spec, StorageMode.SAMO, 0.1)
        above = model_state_bytes(spec, StorageMode.SAMO, 0.4)
        assert below > dense > above

    def test_memory_per_gpu_monotone_in_sparsity(self):
        spec = get_spec("gpt3-6.7b")
        mems = [
            memory_per_gpu(spec, 4, StorageMode.SAMO, sparsity=p)
            for p in (0.3, 0.5, 0.7, 0.9)
        ]
        assert mems == sorted(mems, reverse=True)

    def test_memory_per_gpu_zero1_uses_g_data(self):
        spec = get_spec("gpt3-2.7b")
        small = memory_per_gpu(spec, 4, StorageMode.ZERO1, g_data=64)
        large = memory_per_gpu(spec, 4, StorageMode.ZERO1, g_data=1)
        assert small < large

    def test_choose_g_inter_single_gpu_tiny_model(self):
        spec = gpt_spec("gpt3-tiny")
        assert choose_g_inter(spec, 1, StorageMode.DENSE) == 1


class TestBalancedPartition:
    def test_covers_all_layers_contiguously(self):
        spec = get_spec("gpt3-2.7b")
        plan = balanced_partition(spec, 8)
        assert plan.boundaries[0] == 0 and plan.boundaries[-1] == spec.num_layers
        assert plan.n_stages == 8
        assert all(a < b for a, b in zip(plan.boundaries, plan.boundaries[1:]))

    def test_flops_conserved(self):
        spec = get_spec("gpt3-xl")
        plan = balanced_partition(spec, 4)
        assert sum(plan.stage_flops) == pytest.approx(spec.fwd_flops_per_sample())

    def test_transformer_imbalance_low(self):
        """Uniform blocks should partition to within ~35% of mean."""
        spec = get_spec("gpt3-13b")
        plan = balanced_partition(spec, 8)
        assert plan.imbalance < 1.35

    @settings(max_examples=20, deadline=None)
    @given(g=st.integers(1, 16))
    def test_property_any_stage_count_valid(self, g):
        spec = gpt_spec("gpt3-xl")
        if g > spec.num_layers:
            return
        plan = balanced_partition(spec, g)
        assert plan.n_stages == g
        assert min(b - a for a, b in zip(plan.boundaries, plan.boundaries[1:])) >= 1

    def test_out_of_range_rejected(self):
        spec = get_spec("gpt3-xl")
        with pytest.raises(ValueError):
            balanced_partition(spec, spec.num_layers + 1)


class TestTimeBalancedPartition:
    """``balanced_partition(mode="time")``: stage boundaries rebalanced
    against time-under-scenario (PartitionPlan.stage_times after
    scenario scaling) instead of raw flops."""

    @staticmethod
    def _uniform_spec(n_layers):
        from repro.models.spec import LayerSpec, ModelSpec

        layers = [
            LayerSpec(f"block{i}", "transformer_block", 100, 90, 1.0e9, 1000, 500)
            for i in range(n_layers)
        ]
        return ModelSpec(name=f"uniform-{n_layers}", layers=layers, batch_size=64, family="gpt")

    def test_straggler_stage_gets_strictly_fewer_layers(self):
        """Golden grid: under the ``straggler`` preset (last stage 1.5x)
        the slow stage receives strictly fewer layers than under flops
        balancing, and total layers are conserved."""
        from repro.parallel import SCENARIOS

        sc = SCENARIOS["straggler"]
        for n_layers in (8, 12, 16, 24, 30):
            for g in (2, 3, 4, 6, 8):
                if n_layers < 2 * g:
                    continue  # < 2 layers/stage: nothing left to shed
                spec = self._uniform_spec(n_layers)
                rates = sc.scale_stage_times([1.0] * g)
                flops_plan = balanced_partition(spec, g)
                time_plan = balanced_partition(spec, g, mode="time", stage_rates=rates)
                assert sum(flops_plan.layer_counts) == n_layers, (n_layers, g)
                assert sum(time_plan.layer_counts) == n_layers, (n_layers, g)
                assert time_plan.layer_counts[-1] < flops_plan.layer_counts[-1], (
                    n_layers,
                    g,
                )
                assert min(time_plan.layer_counts) >= 1

    def test_golden_gpt3_xl_straggler_boundaries(self):
        """Pinned cuts for the paper model (regression anchor)."""
        from repro.parallel import SCENARIOS

        spec = get_spec("gpt3-xl")
        rates = SCENARIOS["straggler"].scale_stage_times([1.0] * 4)
        assert balanced_partition(spec, 4).layer_counts == [8, 7, 6, 6]
        time_plan = balanced_partition(spec, 4, mode="time", stage_rates=rates)
        assert time_plan.layer_counts == [9, 7, 7, 4]
        assert time_plan.mode == "time"
        assert time_plan.stage_rates == tuple(rates)

    def test_uniform_rates_reduce_to_flops_mode(self):
        spec = get_spec("gpt3-2.7b")
        flops_plan = balanced_partition(spec, 8)
        time_plan = balanced_partition(spec, 8, mode="time", stage_rates=[1.0] * 8)
        assert time_plan.boundaries == flops_plan.boundaries
        assert balanced_partition(spec, 8, mode="time").boundaries == flops_plan.boundaries

    def test_time_mode_lowers_weighted_bottleneck(self):
        """The objective it optimises: max(rate_i * stage_flops_i)."""
        from repro.parallel import SCENARIOS

        sc = SCENARIOS["straggler"]
        for g in (2, 4, 8):
            spec = get_spec("gpt3-2.7b")
            rates = sc.scale_stage_times([1.0] * g)
            fl = balanced_partition(spec, g)
            tm = balanced_partition(spec, g, mode="time", stage_rates=rates)
            weighted = lambda plan: max(r * f for r, f in zip(rates, plan.stage_flops))
            assert weighted(tm) < weighted(fl)

    def test_time_mode_reduces_straggler_makespan(self):
        """Acceptance: under the straggler preset, mode='time' strictly
        reduces the simulated makespan vs flops partitioning."""
        from repro.parallel import compare_partition_modes

        spec = get_spec("gpt3-xl")
        traces = compare_partition_modes(
            spec, "straggler", g_inter=4, m=8, t_f_model=4.0, t_b_model=8.0
        )
        assert traces["time"].makespan < traces["flops"].makespan

    def test_invalid_mode_and_rates_rejected(self):
        spec = get_spec("gpt3-xl")
        with pytest.raises(ValueError, match="unknown partition mode"):
            balanced_partition(spec, 4, mode="latency")
        with pytest.raises(ValueError, match="only apply"):
            balanced_partition(spec, 4, mode="flops", stage_rates=[1.0] * 4)
        with pytest.raises(ValueError, match="entries"):
            balanced_partition(spec, 4, mode="time", stage_rates=[1.0] * 3)
        with pytest.raises(ValueError, match="positive"):
            balanced_partition(spec, 4, mode="time", stage_rates=[1.0, 1.0, 0.0, 1.0])


class TestSchedulingPolicies:
    """The Section II-E scheduling flags: async sends, 1F1B preference,
    bounded in-flight forwards."""

    def test_defaults_unchanged(self):
        """Default flags reproduce the Figure 3 schedule exactly."""
        tr = simulate_pipeline(3, 5, 1.0, 2.0)
        assert tr.makespan == pytest.approx(21.0)
        for g in range(3):
            assert tr.idle_time(g) == pytest.approx(6.0)

    def test_blocking_sends_never_faster(self):
        for msg in (0.0, 0.2, 0.5):
            a = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=msg)
            b = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=msg, blocking_sends=True)
            assert b.makespan >= a.makespan - 1e-9

    def test_blocking_sends_equal_when_messages_free(self):
        a = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=0.0)
        b = simulate_pipeline(4, 8, 1.0, 2.0, msg_time=0.0, blocking_sends=True)
        assert b.makespan == pytest.approx(a.makespan)

    def test_peak_in_flight_bounds(self):
        tr = simulate_pipeline(4, 12, 1.0, 2.0)
        # 1F1B warmup window: stage g holds at most G_inter - g forwards.
        for g in range(4):
            assert tr.peak_in_flight[g] <= 4 - g

    def test_unbounded_reaches_m(self):
        tr = simulate_pipeline(
            4, 12, 1.0, 2.0, prefer_backward=False, bound_in_flight=False
        )
        assert tr.peak_in_flight[0] == 12

    def test_fifo_completes_all_tasks(self):
        tr = simulate_pipeline(5, 9, 1.0, 2.0, msg_time=0.3, prefer_backward=False)
        assert len(tr.tasks) == 2 * 5 * 9

    def test_all_policy_combinations_complete(self):
        import itertools

        for blk, pref, bound in itertools.product((False, True), repeat=3):
            tr = simulate_pipeline(
                3, 6, 1.0, 1.5, msg_time=0.1,
                blocking_sends=blk, prefer_backward=pref, bound_in_flight=bound,
            )
            assert len(tr.tasks) == 2 * 3 * 6
            assert tr.makespan > 0
