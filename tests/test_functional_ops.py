"""Gradient and semantics checks of the neural-network functional ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


class TestActivations:
    @pytest.mark.parametrize("fn,npfn", [
        (F.relu, lambda v: np.maximum(v, 0)),
        (F.sigmoid, lambda v: 1 / (1 + np.exp(-v))),
    ])
    def test_forward(self, fn, npfn, rng):
        x = rng.normal(size=(4, 5))
        assert np.allclose(fn(Tensor(x)).data, npfn(x), atol=1e-6)

    @pytest.mark.parametrize("fn", [F.relu, F.gelu, F.sigmoid])
    def test_gradcheck(self, fn, gradcheck, rng):
        x = rng.normal(size=(3, 4)) + 0.1  # avoid relu kink
        t = Tensor(x, requires_grad=True)
        fn(t).sum().backward()
        num = gradcheck(lambda v: fn(Tensor(v)).data.sum(), x)
        assert np.allclose(t.grad, num, atol=1e-4)

    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(6, 9))))
        assert np.allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_softmax_grad(self, gradcheck, rng):
        x = rng.normal(size=(2, 5))
        t = Tensor(x, requires_grad=True)
        (F.softmax(t) * Tensor(np.arange(5, dtype=np.float64))).sum().backward()
        num = gradcheck(
            lambda v: (F.softmax(Tensor(v)).data * np.arange(5)).sum(), x
        )
        assert np.allclose(t.grad, num, atol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 7)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-6)

    def test_softmax_numerically_stable(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]])))
        assert np.all(np.isfinite(out.data))


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(8, 5))
        targets = rng.integers(0, 5, size=8)
        loss = F.cross_entropy(Tensor(logits), targets)
        sm = np.exp(logits - logits.max(1, keepdims=True))
        sm /= sm.sum(1, keepdims=True)
        manual = -np.log(sm[np.arange(8), targets]).mean()
        assert np.isclose(loss.item(), manual, atol=1e-5)

    def test_cross_entropy_grad(self, gradcheck, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        t = Tensor(logits, requires_grad=True)
        F.cross_entropy(t, targets).backward()
        num = gradcheck(lambda v: F.cross_entropy(Tensor(v), targets).data, logits)
        assert np.allclose(t.grad, num, atol=1e-5)

    def test_cross_entropy_3d_input(self, rng):
        logits = rng.normal(size=(2, 6, 5))
        targets = rng.integers(0, 5, size=(2, 6))
        loss = F.cross_entropy(Tensor(logits), targets)
        assert np.isfinite(loss.item())

    def test_cross_entropy_ignore_index(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, -1, 1, -1])
        t = Tensor(logits, requires_grad=True)
        F.cross_entropy(t, targets, ignore_index=-1).backward()
        assert np.allclose(t.grad[1], 0.0) and np.allclose(t.grad[3], 0.0)
        assert not np.allclose(t.grad[0], 0.0)

    def test_mse(self, rng):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        b = rng.normal(size=(5,))
        F.mse_loss(a, b).backward()
        assert np.allclose(a.grad, 2 * (a.data - b) / 5, atol=1e-6)


class TestNormalisation:
    def test_layer_norm_stats(self, rng):
        from repro.tensor import LayerNorm

        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(size=(4, 16)) * 3 + 5))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_gradcheck(self, gradcheck, rng):
        from repro.tensor import LayerNorm

        ln = LayerNorm(8)
        x = rng.normal(size=(3, 8))
        t = Tensor(x, requires_grad=True)
        ln(t).sum().backward()
        num = gradcheck(lambda v: ln(Tensor(v)).data.sum(), x)
        assert np.allclose(t.grad, num, atol=1e-5)

    def test_batch_norm_training_stats(self, rng):
        from repro.tensor import BatchNorm2d

        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(8, 3, 4, 4)) * 2 + 1)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        assert not np.allclose(bn.running_mean, 0.0)  # updated in place

    def test_batch_norm_eval_uses_running_stats(self, rng):
        from repro.tensor import BatchNorm2d

        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(8, 3, 4, 4)))
        for _ in range(10):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        assert not np.allclose(out_eval.data, out_train.data)

    def test_batch_norm_requires_4d(self, rng):
        from repro.tensor import BatchNorm2d

        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(rng.normal(size=(8, 3))))


class TestConvPool:
    def test_conv_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        # naive reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        ref[n, o, i, j] = (xp[n, :, i : i + 3, j : j + 3] * w[o]).sum()
        assert np.allclose(out, ref, atol=1e-5)

    def test_conv_weight_gradcheck(self, gradcheck, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        tw = Tensor(w, requires_grad=True)
        F.conv2d(Tensor(x), tw, stride=2, padding=1).sum().backward()
        num = gradcheck(
            lambda v: F.conv2d(Tensor(x), Tensor(v), stride=2, padding=1).data.sum(), w
        )
        assert np.allclose(tw.grad, num, atol=1e-4)

    def test_conv_bias_grad(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = Tensor(np.zeros(3), requires_grad=True)
        F.conv2d(Tensor(x), Tensor(w), b, padding=1).sum().backward()
        assert np.allclose(b.grad, 2 * 4 * 4)

    def test_conv_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 3, 4, 4))), Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        t = Tensor(x, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        assert t.grad.sum() == 4 and t.grad[0, 0, 3, 3] == 1

    def test_avgpool(self, gradcheck, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        t = Tensor(x, requires_grad=True)
        F.avg_pool2d(t, 2).sum().backward()
        assert np.allclose(t.grad, 0.25)

    def test_adaptive_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        out = F.adaptive_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out.data[..., 0, 0], x.mean(axis=(2, 3)), atol=1e-6)


class TestShapeUtilities:
    def test_cat_grad_split(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        F.cat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 3) and b.grad.shape == (4, 3)

    def test_stack(self, rng):
        ts = [Tensor(rng.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        out = F.stack(ts, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        assert all(np.allclose(t.grad, 1.0) for t in ts)

    def test_pad2d_roundtrip_grad(self, rng):
        t = Tensor(rng.normal(size=(1, 1, 3, 3)), requires_grad=True)
        F.pad2d(t, 2).sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_flatten(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)))
        assert F.flatten(t).shape == (2, 12)

    def test_embedding_scatter_grad(self, rng):
        w = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        idx = np.array([[1, 1, 3]])
        F.embedding(w, idx).sum().backward()
        assert np.allclose(w.grad[1], 2.0) and np.allclose(w.grad[3], 1.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_masked_fill(self, rng):
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        mask = np.eye(3, dtype=bool)
        out = F.masked_fill(x, mask, -1e9)
        assert np.all(out.data[mask] == -1e9)
        out.sum().backward()
        assert np.allclose(x.grad, (~mask).astype(float))

    def test_dropout_train_vs_eval(self, rng):
        x = Tensor(np.ones((100, 100)))
        out_train = F.dropout(x, 0.5, training=True, rng=rng)
        out_eval = F.dropout(x, 0.5, training=False)
        assert np.allclose(out_eval.data, 1.0)
        kept = out_train.data != 0
        assert 0.3 < kept.mean() < 0.7
        assert np.allclose(out_train.data[kept], 2.0)  # inverted scaling

    def test_dropout_p1_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)
