"""Cross-validation: the batch-time model vs the event simulator vs the
paper's closed-form equations (Eqs. 6-11)."""

import numpy as np
import pytest

from repro.cluster import SUMMIT, DeviceModel, p2p_message_time, pipeline_message_bytes
from repro.models import get_spec
from repro.parallel import (
    bubble_time,
    microbatches_per_gpu,
    simulate_batch,
    simulate_pipeline,
    transmission_time,
)


class TestModelVsEventSimulator:
    @pytest.mark.parametrize("g_inter,m", [(2, 8), (4, 8), (8, 16)])
    def test_bubble_agreement(self, g_inter, m):
        """simulate_batch's bubble equals the event simulator's idle time
        for the same stage times (free messages)."""
        t_f, t_b = 0.02, 0.06
        trace = simulate_pipeline(g_inter, m, t_f, t_b)
        eq7 = bubble_time(g_inter, t_f * g_inter, t_b * g_inter)
        assert trace.idle_time(0) == pytest.approx(eq7, rel=1e-9)

    def test_batch_p2p_equals_eq9(self):
        """The engine's p2p phase is exactly Eq. 9 with the α-β message
        cost (no hidden fudge factors for AxoNN)."""
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 256, "axonn")
        g_inter, g_data = b.config.g_inter, b.config.g_data
        msg_bytes = pipeline_message_bytes(1, 2048 * 2560)
        t_msg = p2p_message_time(msg_bytes)
        expected = transmission_time(spec.batch_size, g_data, 1, t_msg, g_inter)
        assert b.p2p == pytest.approx(expected, rel=1e-9)

    def test_batch_bubble_equals_eq7(self):
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 256, "axonn")
        device = DeviceModel(SUMMIT)
        t_f_model = device.time(spec.fwd_flops_per_sample())
        expected = bubble_time(b.config.g_inter, t_f_model, 3 * t_f_model)
        assert b.bubble == pytest.approx(expected, rel=1e-9)

    def test_compute_conserved_across_g_inter(self):
        """Total compute per GPU = batch flops / G regardless of the
        decomposition (before SAMO overhead)."""
        spec = get_spec("gpt3-6.7b")
        a = simulate_batch(spec, 512, "axonn")
        d = simulate_batch(spec, 512, "deepspeed-3d")
        assert a.compute == pytest.approx(d.compute, rel=1e-9)

    def test_deepspeed_penalty_is_p2p_only(self):
        spec = get_spec("gpt3-6.7b")
        a = simulate_batch(spec, 512, "axonn")
        d = simulate_batch(spec, 512, "deepspeed-3d")
        assert d.p2p == pytest.approx(a.p2p * SUMMIT.deepspeed_p2p_penalty, rel=1e-9)
        assert d.bubble == pytest.approx(a.bubble, rel=1e-9)
        assert d.collective == pytest.approx(a.collective, rel=1e-9)

    def test_sputnik_compute_scaled_by_slowdown(self):
        spec = get_spec("gpt3-2.7b")
        sam = simulate_batch(spec, 512, "axonn+samo")
        spu = simulate_batch(spec, 512, "sputnik")
        if spu.config.g_inter == sam.config.g_inter:
            base = sam.compute - sam.notes["overhead"]
            assert spu.compute == pytest.approx(base * SUMMIT.sputnik_compute_slowdown, rel=1e-6)


class TestPipelineWithMessages:
    def test_message_delay_bounded_by_serial_chain(self):
        """With messages, makespan <= free-message makespan + the longest
        dependency chain of message hops (sanity bound, no deadlock)."""
        g, m, tf, tb, msg = 4, 8, 1.0, 2.0, 0.25
        free = simulate_pipeline(g, m, tf, tb).makespan
        slow = simulate_pipeline(g, m, tf, tb, msg_time=msg).makespan
        worst = free + msg * 2 * (g - 1) * m  # every hop fully exposed
        assert free < slow <= worst

    def test_idle_exceeds_pure_bubble_with_messages(self):
        g, m = 3, 6
        free = simulate_pipeline(g, m, 1.0, 2.0)
        slow = simulate_pipeline(g, m, 1.0, 2.0, msg_time=0.5)
        assert slow.idle_time(0) > free.idle_time(0)

    def test_single_microbatch(self):
        tr = simulate_pipeline(4, 1, 1.0, 2.0)
        # serial chain: 4 fwd + 4 bwd
        assert tr.makespan == pytest.approx(12.0)


class TestMicrobatchAlgebra:
    def test_eq10_identity(self):
        """t_send ∝ 4 B G_inter / (mbs G): expressing Eq. 9 through Eq. 10
        gives the same number."""
        B, G, mbs, t_msg = 1024, 256, 2, 0.005
        for g_inter in (2, 4, 8):
            g_data = G // g_inter
            eq9 = transmission_time(B, g_data, mbs, t_msg, g_inter)
            eq10 = 4 * B * g_inter / (mbs * G) * t_msg
            assert eq9 == pytest.approx(eq10)

    def test_microbatches_per_gpu_counts(self):
        assert microbatches_per_gpu(512, 16, 1) == 32
        assert microbatches_per_gpu(512, 16, 2) == 16
