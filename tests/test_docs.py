"""Docs subsystem integrity: runnable api doctests + docs/ link checking.

Tier-1 gate for the two ways documentation rots: the ``>>>`` examples on
the public ``repro.api`` surface are executed (same corpus as the CI
``pytest --doctest-modules src/repro/api`` job), and every relative link
and ``path::function`` citation in ``docs/*.md`` / ``README.md`` is
resolved against the tree (shared logic with ``benchmarks/check_docs.py``,
which CI runs standalone).
"""

import doctest
import importlib
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "benchmarks"))

import check_docs  # noqa: E402  (the benchmarks/ checker, reused here)

API_MODULES = [
    "repro.api",
    "repro.api.job",
    "repro.api.machine",
    "repro.api.scenario_set",
    "repro.api.session",
    "repro.rng",
    "repro.stochastic",
    "repro.stochastic.process",
    "repro.stochastic.monte_carlo",
    "repro.stochastic.replan",
]


@pytest.mark.parametrize("module_name", API_MODULES)
def test_api_doctests(module_name):
    """Every ``>>>`` example on the public api surface must run green."""
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"


def test_api_doctest_corpus_nonempty():
    """The docstring pass must actually ship examples (guards against a
    refactor silently dropping every doctest while the runner stays green)."""
    attempted = 0
    for module_name in API_MODULES:
        module = importlib.import_module(module_name)
        attempted += doctest.testmod(module, verbose=False).attempted
    assert attempted >= 10, f"only {attempted} doctest examples found"


def test_docs_directory_exists():
    assert (REPO / "docs" / "architecture.md").exists()
    assert (REPO / "docs" / "cost_model.md").exists()


def test_doc_links_and_citations_resolve():
    errors = check_docs.run()
    assert not errors, "\n".join(errors)


def test_cost_model_cites_every_equation():
    """docs/cost_model.md must cite an implementation for Eqs. 1-7."""
    text = (REPO / "docs" / "cost_model.md").read_text()
    for needle in ("Eq. 1", "Eq. 2", "Eq. 3", "Eq. 4", "Eq. 5", "Eq. 6–7"):
        assert needle in text, f"cost_model.md lost its {needle} row"
    # the new fidelity pieces must stay documented with citations
    for fn in (
        "overlap_exposed_collective",
        "hierarchical_allreduce_time",
        "place_replicas",
    ):
        assert f"::{fn}" in text, f"cost_model.md no longer cites {fn}"
