"""Structured pruning (block / vector / channel) and SNIP saliency masks,
including their compatibility with the SAMO training state."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SAMOConfig, SAMOTrainingState
from repro.pruning import (
    block_prune,
    channel_prune,
    prunable_parameters,
    snip_prune,
    snip_scores,
    unit_norms,
    vector_prune,
)
from repro.tensor import Linear, Sequential, Tensor


def _net(seed=0, din=16, dh=32, dout=8):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(din, dh, rng=rng), Linear(dh, dout, rng=rng))


def _block_uniform(mask, name, shape, block):
    """Every (bh x bw) tile of the bool mask is all-kept or all-pruned."""
    bm = mask.bool_mask(name).reshape(shape)
    bh, bw = block
    tiles = bm.reshape(shape[0] // bh, bh, shape[1] // bw, bw)
    sums = tiles.sum(axis=(1, 3))
    return np.all((sums == 0) | (sums == bh * bw))


class TestBlockPrune:
    def test_blocks_kept_or_pruned_whole(self):
        net = _net()
        m = block_prune(net, 0.6, block_shape=(4, 4))
        assert _block_uniform(m, "0.weight", (32, 16), (4, 4))
        assert _block_uniform(m, "1.weight", (8, 32), (4, 4))

    def test_global_sparsity_exact_at_block_granularity(self):
        net = _net()
        m = block_prune(net, 0.5, block_shape=(4, 4))
        # 32*16/16 + 8*32/16 = 32 + 16 = 48 blocks; keep 24 -> exact 0.5
        assert m.sparsity == pytest.approx(0.5)

    def test_keeps_highest_norm_blocks(self):
        net = Sequential(Linear(8, 8, rng=np.random.default_rng(0)))
        w = net[0].weight
        w.data[...] = 0.01
        w.data[:4, :4] = 10.0  # one dominant block
        m = block_prune(net, 0.75, block_shape=(4, 4))
        keep = m.bool_mask("0.weight")
        assert np.all(keep[:4, :4])

    def test_layer_scope(self):
        net = _net()
        net[0].weight.data[...] *= 100
        m = block_prune(net, 0.5, block_shape=(4, 4), scope="layer")
        assert m.layer_sparsity("0.weight") == pytest.approx(0.5)
        assert m.layer_sparsity("1.weight") == pytest.approx(0.5)

    def test_nontileable_falls_back_unstructured(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(10, 6, rng=rng))  # 6x10: not 4x4-tileable
        m = block_prune(net, 0.5, block_shape=(4, 4))
        assert "0.weight" in m
        assert m.layer_sparsity("0.weight") == pytest.approx(0.5)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            block_prune(_net(), 1.0)

    def test_samo_accepts_block_mask(self):
        """Structured masks drive the identical SAMO pipeline."""
        net = _net()
        m = block_prune(net, 0.75, block_shape=(4, 4))
        state = SAMOTrainingState(
            net, m, SAMOConfig(optimizer="sgd", lr=0.05, warn_below_break_even=False)
        )
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)).astype(np.float32))
        state.model(x).sum().backward()
        state.compress_gradients()
        assert state.step()
        state.consistency_check()

    @settings(max_examples=20, deadline=None)
    @given(sparsity=st.floats(0.0, 0.9), bh=st.sampled_from([2, 4]), bw=st.sampled_from([2, 4]))
    def test_property_block_structure_preserved(self, sparsity, bh, bw):
        net = _net(seed=3)
        m = block_prune(net, sparsity, block_shape=(bh, bw))
        assert _block_uniform(m, "0.weight", (32, 16), (bh, bw))


class TestVectorPrune:
    def test_vectors_are_column_blocks(self):
        net = _net()
        m = vector_prune(net, 0.5, v=4)
        assert _block_uniform(m, "0.weight", (32, 16), (4, 1))

    def test_matches_block_prune_with_v_by_1(self):
        net = _net(seed=9)
        a = vector_prune(net, 0.6, v=4)
        b = block_prune(net, 0.6, block_shape=(4, 1))
        for name in a:
            assert np.array_equal(a.indices[name], b.indices[name])


class TestChannelPrune:
    def test_whole_rows_pruned(self):
        net = _net()
        m = channel_prune(net, 0.5)
        bm = m.bool_mask("0.weight")
        row_counts = bm.sum(axis=1)
        assert np.all((row_counts == 0) | (row_counts == 16))

    def test_per_layer_sparsity(self):
        net = _net()
        m = channel_prune(net, 0.5)
        assert m.layer_sparsity("0.weight") == pytest.approx(0.5)
        assert m.layer_sparsity("1.weight") == pytest.approx(0.5)

    def test_keeps_high_norm_channels(self):
        net = Sequential(Linear(4, 4, rng=np.random.default_rng(0)))
        net[0].weight.data[...] = 0.01
        net[0].weight.data[2, :] = 5.0
        m = channel_prune(net, 0.75)
        keep = m.bool_mask("0.weight")
        assert np.all(keep[2]) and keep.sum() == 4


class TestUnitNorms:
    def test_values(self):
        w = np.zeros((4, 4), np.float32)
        w[:2, :2] = 3.0
        norms = unit_norms(w, (2, 2))
        assert norms.shape == (2, 2)
        assert norms[0, 0] == pytest.approx(6.0)  # sqrt(4 * 9)
        assert norms[1, 1] == 0.0

    def test_rejects_nontileable(self):
        with pytest.raises(ValueError):
            unit_norms(np.zeros((5, 4)), (2, 2))


class TestSNIP:
    def _loss_fn(self, seed=0, din=16):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((8, din)).astype(np.float32))

        def fn(model):
            return (model(x) ** 2).sum()

        return fn

    def test_target_sparsity(self):
        net = _net()
        m = snip_prune(net, self._loss_fn(), sparsity=0.8)
        total = m.total_size()
        assert m.total_kept() == total - round(0.8 * total)

    def test_scores_nonnegative_and_shaped(self):
        net = _net()
        scores = snip_scores(net, self._loss_fn())
        params = prunable_parameters(net)
        assert set(scores) == set(params)
        for name, s in scores.items():
            assert s.shape == params[name].data.shape
            assert np.all(s >= 0)

    def test_zero_weight_has_zero_saliency(self):
        """|g*w| = 0 when w = 0, so zero weights are pruned first."""
        net = _net()
        net[0].weight.data[0, :] = 0.0
        m = snip_prune(net, self._loss_fn(), sparsity=0.5)
        keep = m.bool_mask("0.weight")
        assert not np.any(keep[0, :])

    def test_multi_batch_accumulation(self):
        net = _net()
        s1 = snip_scores(net, self._loss_fn(seed=1), n_batches=1)
        s3 = snip_scores(net, self._loss_fn(seed=1), n_batches=3)
        for name in s1:
            assert np.allclose(3.0 * s1[name], s3[name], rtol=1e-4)

    def test_grads_cleared_after_scoring(self):
        net = _net()
        snip_scores(net, self._loss_fn())
        assert all(p.grad is None for p in net.parameters())

    def test_nonscalar_loss_rejected(self):
        net = _net()
        x = Tensor(np.ones((2, 16), np.float32))
        with pytest.raises(ValueError, match="scalar"):
            snip_scores(net, lambda m: m(x))

    def test_unused_parameter_detected(self):
        net = _net()
        x = Tensor(np.ones((2, 16), np.float32))

        def partial_loss(model):
            return model[0](x).sum()  # second layer unused

        with pytest.raises(RuntimeError, match="no gradient"):
            snip_scores(net, partial_loss)

    def test_samo_accepts_snip_mask(self):
        net = _net()
        m = snip_prune(net, self._loss_fn(), sparsity=0.9)
        state = SAMOTrainingState(
            net, m, SAMOConfig(optimizer="adamw", lr=1e-3)
        )
        x = Tensor(np.ones((4, 16), np.float32))
        state.model(x).sum().backward()
        state.compress_gradients()
        assert state.step()
        state.consistency_check()
