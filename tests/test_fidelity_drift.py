"""Cross-fidelity consistency matrix and measured-fidelity determinism.

One table, every backend: the pairwise relationships between
``analytic``, ``analytic-batch``, ``sim`` and ``measured`` that were
previously pinned piecemeal across ``test_simulator_consistency.py``,
``test_batch_eval.py`` and ``test_api_golden.py`` (those goldens stay —
this file is the consolidated matrix, run over the same small Fig. 6-8
style templates the drift report prices at scale):

* ``analytic-batch`` is the same equations vectorized — every phase must
  match the scalar path **exactly** (``==``, not approx);
* ``sim`` shares the device model (compute/collective/other/memory
  bit-comparable) but folds exposed messaging into the pipeline
  timeline: its ``p2p`` phase is 0 and its ``bubble`` absorbs it;
* ``measured`` executes the proxy schedule and replays the event ledger
  at model-scale costs: compute matches to round-off, the structural
  phases stay inside :data:`repro.autotune.DRIFT_TOLERANCES`.

Plus the closed-loop determinism contracts: same seed ⇒ identical
calibration fit, identical measured breakdowns, byte-identical drift
report JSON.
"""

import json

import pytest

from repro.api import Job, Machine, Session
from repro.autotune import available_fidelities, make_estimator
from repro.autotune.drift import (
    DRIFT_PHASES,
    DRIFT_TOLERANCES,
    FIG_TEMPLATES,
    candidate_for_workload,
    drift_report,
    drift_report_json,
)
from repro.autotune.measured import measure_comm_samples
from repro.cluster import SUMMIT, fit_calibration, synthetic_comm_samples
from repro.models import get_spec

# small-GPU analogues of the Fig. 6-8 templates: same frameworks and
# model families, cut down so the executed proxy stays tier-1 fast
TEMPLATES = [
    ("gpt3-xl", 16, "axonn"),
    ("gpt3-xl", 16, "axonn+samo"),
    ("gpt3-2.7b", 64, "axonn"),
    ("gpt3-2.7b", 64, "deepspeed-3d"),
    ("wideresnet-101", 16, "axonn"),
]

FIDELITIES = ("analytic", "analytic-batch", "sim", "measured")


@pytest.fixture(scope="module")
def matrix():
    """Evaluations of every template under every fidelity."""
    out = {}
    for model, n_gpus, framework in TEMPLATES:
        spec = get_spec(model)
        config = candidate_for_workload(spec, framework, n_gpus)
        out[(model, n_gpus, framework)] = {
            "analytic": make_estimator("analytic", spec, SUMMIT).evaluate(config),
            "analytic-batch": (
                make_estimator("analytic-batch", spec, SUMMIT)
                .evaluate_batch([config])
                .evaluation(0, 0)
            ),
            "sim": make_estimator("sim", spec, SUMMIT).evaluate(config),
            "measured": make_estimator("measured", spec, SUMMIT).evaluate(config),
        }
    return out


def _drift(value, reference):
    if value == reference:
        return 0.0
    return abs(value - reference) / max(abs(reference), 1e-300)


class TestCrossFidelityMatrix:
    @pytest.mark.parametrize("key", TEMPLATES, ids=lambda k: f"{k[0]}@{k[1]}-{k[2]}")
    def test_batch_path_is_exact(self, matrix, key):
        a, b = matrix[key]["analytic"], matrix[key]["analytic-batch"]
        for phase in DRIFT_PHASES:
            assert getattr(b.breakdown, phase) == getattr(a.breakdown, phase), phase
        assert b.breakdown.memory_per_gpu == a.breakdown.memory_per_gpu

    @pytest.mark.parametrize("key", TEMPLATES, ids=lambda k: f"{k[0]}@{k[1]}-{k[2]}")
    def test_sim_shares_device_model(self, matrix, key):
        """The event engine re-times the pipeline but prices compute,
        collectives and 'other' off the same closed forms."""
        a, s = matrix[key]["analytic"], matrix[key]["sim"]
        for phase in ("compute", "collective", "other"):
            assert getattr(s.breakdown, phase) == pytest.approx(
                getattr(a.breakdown, phase), rel=1e-9
            ), phase
        assert s.breakdown.memory_per_gpu == a.breakdown.memory_per_gpu

    @pytest.mark.parametrize("key", TEMPLATES, ids=lambda k: f"{k[0]}@{k[1]}-{k[2]}")
    def test_sim_folds_p2p_into_timeline(self, matrix, key):
        """sim reports no separate p2p phase; with a real pipeline the
        exposed messaging reappears inside its bubble."""
        a, s = matrix[key]["analytic"], matrix[key]["sim"]
        assert s.breakdown.p2p == 0.0
        if a.breakdown.p2p > 0:
            assert s.breakdown.bubble > a.breakdown.bubble

    @pytest.mark.parametrize("key", TEMPLATES, ids=lambda k: f"{k[0]}@{k[1]}-{k[2]}")
    def test_measured_within_tolerances(self, matrix, key):
        a, m = matrix[key]["analytic"], matrix[key]["measured"]
        for phase in DRIFT_PHASES:
            drift = _drift(getattr(m.breakdown, phase), getattr(a.breakdown, phase))
            assert drift <= DRIFT_TOLERANCES[phase], (phase, drift)
        # memory is priced by the shared model, not executed: identical
        assert m.breakdown.memory_per_gpu == a.breakdown.memory_per_gpu

    @pytest.mark.parametrize("key", TEMPLATES, ids=lambda k: f"{k[0]}@{k[1]}-{k[2]}")
    def test_measured_compute_is_exact(self, matrix, key):
        a, m = matrix[key]["analytic"], matrix[key]["measured"]
        assert m.breakdown.compute == pytest.approx(a.breakdown.compute, rel=1e-9)
        assert m.breakdown.other == pytest.approx(a.breakdown.other, rel=1e-9)

    def test_sparse_cnn_bucket_latency_caveat(self):
        """Known structural outlier, pinned on purpose: a SAMO CNN's
        all-reduce payload is ~10% of dense, so the executed 4-bucket
        collective's extra per-bucket ring latency is *relatively* huge
        on that one phase — while staying a few ms in absolute terms.
        The excess is bounded by the extra buckets' latency terms (after
        overlap hiding) and the total still lands inside its floor."""
        spec = get_spec("wideresnet-101")
        config = candidate_for_workload(spec, "axonn+samo", 16)
        a = make_estimator("analytic", spec, SUMMIT).evaluate(config)
        m = make_estimator("measured", spec, SUMMIT).evaluate(config)
        excess = m.breakdown.collective - a.breakdown.collective
        g = config.g_data
        per_bucket_alpha = 2 * (g - 1) * SUMMIT.coll_alpha
        assert 0 < excess <= 3 * per_bucket_alpha  # <= (n_buckets-1) rings' latency
        total_drift = _drift(m.breakdown.total, a.breakdown.total)
        assert total_drift <= DRIFT_TOLERANCES["total"]


class TestMeasuredDeterminism:
    def test_same_seed_identical_breakdowns(self):
        spec = get_spec("gpt3-xl")
        config = candidate_for_workload(spec, "axonn", 64)
        runs = [
            make_estimator("measured", spec, SUMMIT, seed=3).evaluate(config)
            for _ in range(2)
        ]
        assert runs[0].breakdown.to_dict() == runs[1].breakdown.to_dict()

    def test_same_seed_identical_calibration_fit(self):
        fits = [
            fit_calibration(synthetic_comm_samples(SUMMIT, seed=11))
            for _ in range(2)
        ]
        assert fits[0] == fits[1]

    def test_drift_report_json_byte_identical(self):
        docs = [
            drift_report_json(drift_report(seed=0, quick=True)) for _ in range(2)
        ]
        assert docs[0] == docs[1]
        parsed = json.loads(docs[0])
        assert parsed["ok"] is True
        assert parsed["templates"][0]["figure"] == FIG_TEMPLATES[0][0]

    def test_quick_report_is_prefix_of_full_set(self):
        doc = drift_report(seed=0, quick=True)
        assert len(doc["templates"]) == 1
        assert doc["tolerances"] == DRIFT_TOLERANCES

    def test_calibration_fit_recovers_ground_truth(self):
        doc = drift_report(seed=0, quick=True)
        for name, entry in doc["calibration"]["constants"].items():
            assert entry["rel_error"] < 0.05, (name, entry)


class TestRegistryAndDispatch:
    def test_measured_is_registered(self):
        assert "measured" in available_fidelities()

    def test_seed_tags_the_fidelity_label(self):
        spec = get_spec("gpt3-xl")
        assert make_estimator("measured", spec, SUMMIT).fidelity == "measured"
        assert (
            make_estimator("measured", spec, SUMMIT, seed=3).fidelity
            == "measured[s3]"
        )

    def test_engine_only_knobs_rejected(self):
        from repro.parallel.scenarios import SCENARIOS

        spec = get_spec("gpt3-xl")
        with pytest.raises(ValueError, match="sim"):
            make_estimator("measured", spec, SUMMIT, scenario=SCENARIOS["straggler"])
        with pytest.raises(ValueError, match="sim"):
            make_estimator("measured", spec, SUMMIT, partition_mode="time")
        with pytest.raises(ValueError, match="sim"):
            make_estimator("measured", spec, SUMMIT, overlap=True)
        with pytest.raises(ValueError, match="sim"):
            make_estimator("measured", spec, SUMMIT, placement="best")

    def test_session_breakdown_dispatches_measured(self):
        session = Session(Machine.summit())
        job = Job(model="gpt3-xl", n_gpus=16, framework="axonn+samo")
        measured = session.breakdown(Job(**{**job.to_dict(), "fidelity": "measured"}))
        analytic = session.breakdown(job)
        assert measured.notes["fidelity"] == "measured"
        assert measured.total > 0
        # compute is shared; totals differ only by the structural phases
        assert measured.compute == pytest.approx(analytic.compute, rel=1e-9)
        assert _drift(measured.total, analytic.total) <= DRIFT_TOLERANCES["total"]

    def test_server_dispatches_measured(self):
        from repro.serve import PlanningServer

        server = PlanningServer(machine=Machine.summit())
        resp = server.handle(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "breakdown",
                "params": {
                    "job": {
                        "model": "gpt3-xl",
                        "n_gpus": 16,
                        "framework": "axonn+samo",
                        "fidelity": "measured",
                    }
                },
            }
        )
        assert "error" not in resp, resp
        assert resp["result"]["notes"]["fidelity"] == "measured"
        assert resp["result"]["total"] > 0


class TestMeasuredCommChannel:
    def test_measure_comm_samples_feed_the_fit(self):
        """The wall-clock channel: real in-process timings are valid
        CommSamples, and the fit either recovers positive constants or
        rejects the (host-noise-distorted) timings loudly — it must
        never silently return an unusable calibration."""
        samples = measure_comm_samples(sizes=(64 * 1024, 1024 * 1024), repeats=2)
        assert {s.channel for s in samples} == {"p2p", "collective"}
        assert all(s.seconds > 0 for s in samples)
        try:
            fitted = fit_calibration(samples)
        except ValueError as err:
            # a loaded host can time a bigger message faster; the fit's
            # job is then to refuse, not to extrapolate nonsense
            assert "non-physical" in str(err)
        else:
            assert fitted.p2p_alpha > 0 and fitted.p2p_beta > 0
            assert fitted.coll_alpha > 0 and fitted.coll_beta > 0
