"""Multi-replica topology placement.

PR 2 priced the pipeline links of replica 0's chain only — ranks
``0..G_inter-1`` — and used it for every data-parallel replica. That
underprices any machine where a later replica's chain straddles a node
boundary replica 0's does not. These tests pin the new contract:
``Topology.replica_pipeline_ranks`` places each replica explicitly (and
raises on placements that fall off the machine instead of silently
wrapping), every replica prices its own ``pipeline_link_times``, and
``simulate_hetero_pipeline`` reports the slowest replica's schedule —
the one the synchronous data-parallel step waits for.
"""

import pytest

from repro.cluster import Topology
from repro.models import get_spec
from repro.parallel import simulate_batch, simulate_hetero_pipeline


class TestReplicaPlacement:
    def test_contiguous_block_placement(self):
        topo = Topology(12)
        assert topo.replica_pipeline_ranks(0, 4) == [0, 1, 2, 3]
        assert topo.replica_pipeline_ranks(1, 4) == [4, 5, 6, 7]
        assert topo.replica_pipeline_ranks(2, 4) == [8, 9, 10, 11]

    def test_tensor_parallel_stride(self):
        topo = Topology(16)
        # mpd = 4 * 2: stage s of replica r roots at r*8 + s*2
        assert topo.replica_pipeline_ranks(1, 4, g_tensor=2) == [8, 10, 12, 14]

    def test_out_of_range_replica_raises(self):
        """The latent bug: placements past the machine used to be the
        caller's problem; now they raise instead of silently wrapping."""
        topo = Topology(8)
        with pytest.raises(IndexError, match="only 8 GPUs"):
            topo.replica_pipeline_ranks(1, 8)
        with pytest.raises(IndexError):
            topo.replica_pipeline_ranks(2, 4)
        with pytest.raises(ValueError):
            topo.replica_pipeline_ranks(-1, 4)

    def test_link_times_range_checked_even_on_duplicates(self):
        """Regression: ``p2p_time``'s src == dst shortcut let an
        out-of-range chain with repeated ranks price its hops at zero."""
        topo = Topology(4)
        with pytest.raises(IndexError):
            topo.pipeline_link_times([5, 5], 10**6)
        with pytest.raises(ValueError, match="share rank"):
            topo.pipeline_link_times([2, 2], 10**6)

    def test_group_spans_nodes_agrees_with_placement(self):
        topo = Topology(12)  # 2 nodes x 6 GPUs
        for replica in range(3):
            ranks = topo.replica_pipeline_ranks(replica, 4)
            crossing = [not topo.same_node(a, b) for a, b in zip(ranks, ranks[1:])]
            assert topo.group_spans_nodes(ranks) == any(crossing)

    def test_straddling_replica_prices_cross_node_links(self):
        topo = Topology(12)
        nbytes = 10**7
        intra = topo.pipeline_link_times(topo.replica_pipeline_ranks(0, 4), nbytes)
        straddle = topo.pipeline_link_times(topo.replica_pipeline_ranks(1, 4), nbytes)
        # replica 1 = ranks 4..7: hop 5->6 crosses the node boundary
        assert straddle[1] > intra[1]
        assert max(straddle) > max(intra)


class TestSlowestReplicaPricing:
    KW = dict(g_inter=4, m=8, mbs=1, t_f_model=0.4, t_b_model=1.2)

    def test_slowest_replica_sets_the_pace(self):
        spec = get_spec("gpt3-xl")
        multi = simulate_hetero_pipeline(spec, n_gpus=12, **self.KW)
        assert multi.n_replicas == 3
        # replica 0 is all-NVLink; the straddling replica is the slowest
        assert multi.slowest_replica != 0
        assert any(t > min(multi.link_times) for t in multi.link_times)

    def test_replica0_only_pricing_is_dead(self):
        """The old path priced every replica like replica 0's intra-node
        chain; the multi-replica sweep must come out strictly slower on
        a machine where a later replica straddles nodes."""
        spec = get_spec("gpt3-xl")
        replica0_only = simulate_hetero_pipeline(spec, n_gpus=4, **self.KW)
        multi = simulate_hetero_pipeline(spec, n_gpus=12, **self.KW)
        assert replica0_only.n_replicas == 1
        assert multi.makespan > replica0_only.makespan

    def test_single_replica_machine_unchanged(self):
        spec = get_spec("gpt3-2.7b")
        trace = simulate_hetero_pipeline(
            spec, g_inter=8, m=4, mbs=1, t_f_model=0.4, t_b_model=1.2, n_gpus=8
        )
        assert trace.n_replicas == 1
        assert trace.slowest_replica == 0
        assert trace.link_times[5] > trace.link_times[0]  # rank 5 -> 6 crosses nodes

    def test_undersized_machine_raises(self):
        spec = get_spec("gpt3-xl")
        with pytest.raises(IndexError):
            simulate_hetero_pipeline(spec, n_gpus=3, **self.KW)

    def test_batch_cost_takes_slowest_replica(self):
        """The sim-fidelity batch bubble reflects the multi-replica sweep:
        it can only grow relative to a replica-0-only chain priced on a
        single-replica machine with the same decomposition."""
        spec = get_spec("gpt3-xl")
        b = simulate_batch(spec, 64, "axonn", pipeline_fidelity="sim")
        g_inter = b.config.g_inter
        m = b.config.microbatches
        t_f, t_b = b.notes["t_f"], b.notes["t_b"]
        solo = simulate_hetero_pipeline(
            spec,
            g_inter=g_inter,
            m=m,
            mbs=1,
            t_f_model=t_f * g_inter,
            t_b_model=t_b * g_inter,
            n_gpus=g_inter,
        )
        assert b.bubble >= max(solo.makespan - m * (t_f + t_b), 0.0) - 1e-12
