"""Framework simulators: qualitative shape of Figs. 5-8 and Table II."""

import pytest

from repro.cluster import SUMMIT
from repro.models import (
    TABLE_I,
    get_spec,
    gpu_counts,
    narayanan_transformer_flops,
    percent_of_peak,
)
from repro.parallel import (
    BatchBreakdown,
    FRAMEWORKS,
    microbatches_per_gpu,
    simulate_batch,
    simulate_deepspeed_batch,
    simulate_samo_batch,
    simulate_sputnik_batch,
    strong_scaling,
    transmission_time,
)

GPT_MODELS = ("gpt3-xl", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b")


class TestEquations:
    def test_transmission_eq9(self):
        # 4 * B/(mbs*G_data) * t_msg
        assert transmission_time(512, 64, 1, 0.01, g_inter=2) == pytest.approx(4 * 8 * 0.01)

    def test_transmission_zero_for_single_stage(self):
        assert transmission_time(512, 512, 1, 0.01, g_inter=1) == 0.0

    def test_transmission_g_inter_required(self):
        """Regression: the old optional ``g_inter=None`` silently charged
        single-stage pipelines the interior-GPU send cost."""
        with pytest.raises(TypeError):
            transmission_time(512, 64, 1, 0.01)

    def test_transmission_g_inter_validated(self):
        with pytest.raises(ValueError):
            transmission_time(512, 64, 1, 0.01, g_inter=0)

    def test_transmission_monotone_in_g_inter(self):
        """Eq. 11: fixing G, t_send grows with G_inter."""
        G, B = 256, 512
        times = [
            transmission_time(B, G // gi, 1, 0.01, g_inter=gi) for gi in (2, 4, 8)
        ]
        assert times == sorted(times) and times[0] < times[-1]

    def test_microbatch_divisibility_enforced(self):
        with pytest.raises(ValueError):
            microbatches_per_gpu(512, 100, 1)


class TestFrameworkOrdering:
    @pytest.mark.parametrize("name", GPT_MODELS)
    def test_samo_fastest_sputnik_slowest(self, name):
        """The consistent Fig. 6/7 ordering at every profiled GPU count."""
        spec = get_spec(name)
        for g in gpu_counts(TABLE_I[name]):
            r = {fw: simulate_batch(spec, g, fw) for fw in FRAMEWORKS}
            assert r["axonn+samo"].total < r["axonn"].total, (name, g)
            assert r["axonn+samo"].total < r["deepspeed-3d"].total, (name, g)
            assert r["sputnik"].total > r["axonn"].total, (name, g)

    @pytest.mark.parametrize("name", GPT_MODELS)
    def test_speedup_grows_with_scale(self, name):
        """Paper: largest speedups at the largest GPU counts. GPT-3 13B is
        nearly flat in the paper too (19/19/22/26), so it only gets a
        no-collapse check."""
        spec = get_spec(name)
        counts = gpu_counts(TABLE_I[name])
        speeds = []
        for g in counts:
            a = simulate_batch(spec, g, "axonn")
            s = simulate_batch(spec, g, "axonn+samo")
            speeds.append(s.speedup_over(a))
        if name == "gpt3-13b":
            assert speeds[-1] > speeds[0] - 2.0
        else:
            assert speeds[-1] > speeds[0]

    def test_speedup_bands_match_paper(self):
        """Simulated speedups stay within a loose band of the annotations."""
        paper = {
            "gpt3-xl": (10, 47), "gpt3-2.7b": (10, 34),
            "gpt3-6.7b": (11, 23), "gpt3-13b": (19, 26),
        }
        for name, (lo, hi) in paper.items():
            spec = get_spec(name)
            for g in gpu_counts(TABLE_I[name]):
                s = simulate_batch(spec, g, "axonn+samo").speedup_over(
                    simulate_batch(spec, g, "axonn")
                )
                assert lo - 8 <= s <= hi + 10, (name, g, s)

    def test_sputnik_roughly_2x_samo(self):
        """'AxoNN+SAMO ends up being nearly twice as fast as Sputnik'."""
        for name in GPT_MODELS:
            spec = get_spec(name)
            g = gpu_counts(TABLE_I[name])[1]
            ratio = simulate_batch(spec, g, "sputnik").total / simulate_batch(
                spec, g, "axonn+samo"
            ).total
            assert 1.4 < ratio < 2.6, (name, ratio)

    def test_strong_scaling_times_decrease(self):
        spec = get_spec("gpt3-2.7b")
        out = strong_scaling(spec, gpu_counts(TABLE_I["gpt3-2.7b"]))
        for fw, series in out.items():
            totals = [b.total for b in series]
            assert totals == sorted(totals, reverse=True), fw


class TestCNNBehaviour:
    def test_pure_data_parallel(self):
        for name in ("vgg19", "wideresnet-101"):
            b = simulate_batch(get_spec(name), 32, "axonn")
            assert b.config.g_inter == 1 and b.p2p == 0.0 and b.bubble == 0.0

    def test_deepspeed_equals_axonn_for_cnns(self):
        """Paper Fig. 5: both use the same NCCL data parallelism."""
        for name in ("vgg19", "wideresnet-101"):
            spec = get_spec(name)
            a = simulate_batch(spec, 64, "axonn")
            d = simulate_batch(spec, 64, "deepspeed-3d")
            assert a.total == pytest.approx(d.total, rel=1e-6)

    def test_sputnik_rejects_convolutions(self):
        with pytest.raises(ValueError):
            simulate_batch(get_spec("vgg19"), 16, "sputnik")

    def test_vgg_benefits_more_than_wrn(self):
        """Paper: VGG speedups (18-44%) > WRN (7-15%), because WRN spends
        proportionally more time in compute."""
        for g in (64, 128):
            sv = simulate_batch(get_spec("vgg19"), g, "axonn+samo").speedup_over(
                simulate_batch(get_spec("vgg19"), g, "axonn"))
            sw = simulate_batch(get_spec("wideresnet-101"), g, "axonn+samo").speedup_over(
                simulate_batch(get_spec("wideresnet-101"), g, "axonn"))
            assert sv > sw

    def test_cnn_speedup_bands(self):
        vgg = [simulate_batch(get_spec("vgg19"), g, "axonn+samo").speedup_over(
            simulate_batch(get_spec("vgg19"), g, "axonn")) for g in (16, 32, 64, 128)]
        wrn = [simulate_batch(get_spec("wideresnet-101"), g, "axonn+samo").speedup_over(
            simulate_batch(get_spec("wideresnet-101"), g, "axonn")) for g in (16, 32, 64, 128)]
        assert 5 <= min(vgg) and max(vgg) <= 55
        assert 3 <= min(wrn) and max(wrn) <= 20

    def test_batch_divisibility_enforced(self):
        with pytest.raises(ValueError):
            simulate_batch(get_spec("vgg19"), 48, "axonn")  # 128 % 48 != 0


class TestBreakdown:
    def test_fig8_phase_shift(self):
        """p2p savings dominate at 128 GPUs; bubble+collective by 512."""
        spec = get_spec("gpt3-2.7b")
        saves = {}
        for g in (128, 512):
            a = simulate_batch(spec, g, "axonn")
            s = simulate_batch(spec, g, "axonn+samo")
            saves[g] = {
                "p2p": (a.p2p - s.p2p) / a.total,
                "rest": (a.bubble - s.bubble + a.collective - s.collective) / a.total,
            }
        assert saves[128]["p2p"] > saves[128]["rest"]
        assert saves[512]["rest"] > saves[512]["p2p"]

    def test_total_is_sum_of_phases(self):
        b = simulate_batch(get_spec("gpt3-xl"), 128, "axonn")
        assert b.total == pytest.approx(b.compute + b.p2p + b.bubble + b.collective + b.other)

    def test_communication_property(self):
        b = simulate_batch(get_spec("gpt3-xl"), 128, "axonn")
        assert b.communication == pytest.approx(b.p2p + b.bubble + b.collective)

    def test_samo_total_comm_reduction_band(self):
        """Paper: total communication reduction is ~33-40% of AxoNN's
        batch time for 2.7B at 128-512 GPUs."""
        spec = get_spec("gpt3-2.7b")
        for g in (128, 256, 512):
            a = simulate_batch(spec, g, "axonn")
            s = simulate_batch(spec, g, "axonn+samo")
            red = (a.communication - s.communication) / a.total
            assert 0.15 < red < 0.45, (g, red)

    def test_compress_overhead_band(self):
        """SAMO overhead is ~5-13% of AxoNN's batch time (paper: 8-12%)."""
        spec = get_spec("gpt3-2.7b")
        for g in (128, 256, 512):
            a = simulate_batch(spec, g, "axonn")
            s = simulate_batch(spec, g, "axonn+samo")
            frac = s.notes["overhead"] / a.total
            assert 0.04 < frac < 0.14, (g, frac)

    def test_as_row_keys(self):
        row = simulate_batch(get_spec("gpt3-xl"), 64, "axonn").as_row()
        assert {"framework", "gpus", "total_s", "G_inter"} <= set(row)

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            simulate_batch(get_spec("gpt3-xl"), 64, "megatron")

    def test_wrapper_modules_agree_with_engine(self):
        spec = get_spec("gpt3-xl")
        assert simulate_samo_batch(spec, 128).total == simulate_batch(spec, 128, "axonn+samo").total
        assert simulate_deepspeed_batch(spec, 128).total == simulate_batch(spec, 128, "deepspeed-3d").total
        assert simulate_sputnik_batch(spec, 128).total == simulate_batch(spec, 128, "sputnik").total


class TestTableII:
    def test_throughput_ordering_and_band(self):
        """Table II: SAMO > AxoNN ~ DeepSpeed > Sputnik; AxoNN ~20-45%,
        SAMO ~30-55%, declining with scale."""
        spec = get_spec("gpt3-13b")
        flops = narayanan_transformer_flops(2048, 2048, 40, 5120, 50257)
        prev_samo = 100.0
        for g in (256, 512, 1024, 2048):
            pct = {
                fw: percent_of_peak(flops, simulate_batch(spec, g, fw).total, g)
                for fw in FRAMEWORKS
            }
            assert pct["axonn+samo"] > pct["axonn"]
            assert pct["axonn+samo"] > pct["deepspeed-3d"]
            assert pct["sputnik"] < pct["axonn"]
            assert pct["axonn+samo"] < prev_samo  # utilisation declines
            prev_samo = pct["axonn+samo"]
            assert 10 < pct["axonn"] < 50
            assert 15 < pct["axonn+samo"] < 60

    def test_memory_claim_reproduction(self):
        """Sec I: 2.7B total memory ~80 GB dense -> ~20 GB with SAMO (-74%).

        Total = model state + per-GPU framework overhead x G_inter."""
        from repro.parallel import StorageMode, choose_g_inter, model_state_bytes

        spec = get_spec("gpt3-2.7b")
        gi_dense = choose_g_inter(spec, 128, StorageMode.DENSE)
        gi_samo = choose_g_inter(spec, 128, StorageMode.SAMO, 0.9)
        dense_total = model_state_bytes(spec, StorageMode.DENSE) + SUMMIT.framework_overhead_bytes * gi_dense
        samo_total = model_state_bytes(spec, StorageMode.SAMO, 0.9) + SUMMIT.framework_overhead_bytes * gi_samo
        reduction = 100 * (dense_total - samo_total) / dense_total
        assert 70 < reduction < 80  # paper: 74%
        assert dense_total / 1e9 == pytest.approx(80.16, rel=0.2)
        assert samo_total / 1e9 == pytest.approx(20.28, rel=0.25)
