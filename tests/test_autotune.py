"""The autotune subsystem: space, estimators, cache, planner, CLI."""

import pytest

from repro.autotune import (
    AnalyticEstimator,
    CandidateConfig,
    EvaluationCache,
    GLOBAL_CACHE,
    Planner,
    SearchSpace,
    SimulatorEstimator,
    activation_footprint_bytes,
    candidate_memory_per_gpu,
    make_cache_key,
    plan,
)
from repro.cluster.calibration import SUMMIT, with_memory_budget
from repro.models import get_spec
from repro.parallel import FRAMEWORKS, StorageMode, choose_g_inter, simulate_batch


# ---------------------------------------------------------------------------
# CandidateConfig
# ---------------------------------------------------------------------------

class TestCandidateConfig:
    def test_create_canonicalises_dense_sparsity(self):
        cfg = CandidateConfig.create("axonn", g_inter=4, g_data=8, sparsity=0.9)
        assert cfg.sparsity == 0.0  # dense storage ignores sparsity
        sp = CandidateConfig.create("axonn+samo", g_inter=4, g_data=8, sparsity=0.9)
        assert sp.sparsity == 0.9

    def test_canonical_hash_stable_and_discriminating(self):
        a = CandidateConfig.create("axonn+samo", g_inter=2, g_data=4)
        b = CandidateConfig.create("axonn+samo", g_inter=2, g_data=4)
        c = CandidateConfig.create("axonn+samo", g_inter=4, g_data=2)
        assert a.canonical_hash() == b.canonical_hash()
        assert a.canonical_hash() != c.canonical_hash()

    def test_mode_framework_compatibility(self):
        with pytest.raises(ValueError, match="invalid for"):
            CandidateConfig.create("axonn", mode=StorageMode.SAMO)
        # deepspeed may run ZeRO-1
        cfg = CandidateConfig.create("deepspeed-3d", mode=StorageMode.ZERO1)
        assert cfg.mode is StorageMode.ZERO1

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="unknown framework"):
            CandidateConfig.create("megatron-lm")
        with pytest.raises(ValueError, match="g_inter"):
            CandidateConfig.create("axonn", g_inter=0)
        with pytest.raises(ValueError, match="sparsity"):
            CandidateConfig.create("axonn+samo", sparsity=1.5)

    def test_derived_degrees(self):
        cfg = CandidateConfig.create(
            "deepspeed-3d", g_tensor=2, g_inter=4, g_data=8
        )
        assert cfg.n_gpus == 64
        assert cfg.model_parallel_degree == 8


# ---------------------------------------------------------------------------
# SearchSpace
# ---------------------------------------------------------------------------

class TestSearchSpace:
    def test_candidates_satisfy_structural_constraints(self):
        spec = get_spec("gpt3-2.7b")
        space = SearchSpace(spec, 128)
        seen = 0
        for cfg in space.candidates():
            seen += 1
            assert cfg.n_gpus == 128
            assert cfg.g_inter <= spec.num_layers
            assert spec.batch_size % (cfg.g_data * cfg.mbs) == 0
            if cfg.framework != "deepspeed-3d":
                assert cfg.g_tensor == 1
            assert cfg.g_tensor <= SUMMIT.gpus_per_node
        assert seen == space.stats.generated > 0

    def test_memory_pruning_cuts_before_costing(self):
        spec = get_spec("gpt3-13b")  # 13B cannot fit shallow pipelines
        space = SearchSpace(spec, 256)
        list(space.candidates())
        assert space.stats.pruned_memory > 0

    def test_tiny_budget_prunes_whole_branches(self):
        spec = get_spec("gpt3-2.7b")
        cal = with_memory_budget(6.0)  # barely above the 5 GiB overhead
        space = SearchSpace(spec, 128, cal=cal)
        cands = list(space.candidates())
        assert space.stats.pruned_branches > 0
        # without tensor parallelism sharding the activations, every
        # surviving candidate must checkpoint under this budget
        assert all(
            c.checkpoint_activations for c in cands if c.g_tensor == 1
        ), "uncheckpointed G_tensor=1 branches must be cut under a tight budget"
        assert any(c.g_tensor == 1 for c in cands)

    def test_cnn_space_is_pure_data_parallel(self):
        spec = get_spec("vgg19")
        cands = list(SearchSpace(spec, 16).candidates())
        assert cands, "CNN space must not be empty"
        for cfg in cands:
            assert cfg.g_inter == 1 and cfg.g_tensor == 1
            assert cfg.framework != "sputnik"  # no sparse convolutions

    def test_unknown_framework_rejected(self):
        with pytest.raises(ValueError, match="unknown frameworks"):
            SearchSpace(get_spec("gpt3-xl"), 64, frameworks=("megatron",))


# ---------------------------------------------------------------------------
# Estimators
# ---------------------------------------------------------------------------

class TestEstimatorParity:
    """On the legacy subspace the analytic estimator IS simulate_batch."""

    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_matches_simulate_batch(self, framework):
        spec = get_spec("gpt3-2.7b")
        ref = simulate_batch(spec, 128, framework, sparsity=0.9)
        mode = StorageMode(ref.notes["mode"])
        gi = ref.config.g_inter
        cfg = CandidateConfig.create(
            framework,
            g_inter=gi,
            g_data=128 // gi,
            mbs=1,
            checkpoint_activations=True,
            mode=mode,
            sparsity=0.9,
        )
        ev = AnalyticEstimator(spec).evaluate(cfg)
        assert ev.total_time == pytest.approx(ref.total, rel=1e-12)
        assert ev.breakdown.bubble == pytest.approx(ref.bubble, rel=1e-12)
        assert ev.breakdown.p2p == pytest.approx(ref.p2p, rel=1e-12)
        assert ev.memory_bytes == ref.memory_per_gpu

    def test_no_checkpoint_trades_memory_for_compute(self):
        spec = get_spec("gpt3-xl")
        est = AnalyticEstimator(spec)
        ck = est.evaluate(
            CandidateConfig.create("axonn", g_inter=4, g_data=16, mbs=1)
        )
        nock = est.evaluate(
            CandidateConfig.create(
                "axonn", g_inter=4, g_data=16, mbs=1, checkpoint_activations=False
            )
        )
        assert nock.breakdown.compute < ck.breakdown.compute  # no recompute
        assert nock.memory_bytes > ck.memory_bytes  # intermediates resident

    def test_tensor_parallel_shards_memory_and_adds_collectives(self):
        spec = get_spec("gpt3-2.7b")
        est = AnalyticEstimator(spec)
        flat = est.evaluate(
            CandidateConfig.create("deepspeed-3d", g_tensor=1, g_inter=8, g_data=16)
        )
        tp = est.evaluate(
            CandidateConfig.create("deepspeed-3d", g_tensor=2, g_inter=8, g_data=8)
        )
        assert tp.memory_bytes < flat.memory_bytes
        assert tp.breakdown.collective > flat.breakdown.collective

    def test_activation_footprint_checkpoint_vs_not(self):
        spec = get_spec("gpt3-xl")
        assert activation_footprint_bytes(spec, 1, False) > activation_footprint_bytes(
            spec, 1, True
        )

    def test_candidate_memory_matches_partitioner_on_legacy_axes(self):
        from repro.parallel import memory_per_gpu

        spec = get_spec("gpt3-2.7b")
        cfg = CandidateConfig.create(
            "axonn+samo", g_inter=4, g_data=32, mbs=2, sparsity=0.9
        )
        assert candidate_memory_per_gpu(spec, cfg) == memory_per_gpu(
            spec, 4, StorageMode.SAMO, 0.9, mbs=2, g_data=32
        )


class TestSimulatorFidelity:
    def test_sim_bubble_at_least_analytic_warmup(self):
        """The event-driven trace sees warmup/drain the closed form does;
        totals stay in the same ballpark."""
        spec = get_spec("gpt3-2.7b")
        cfg = CandidateConfig.create(
            "axonn+samo", g_inter=4, g_data=32, mbs=1, sparsity=0.9
        )
        an = AnalyticEstimator(spec).evaluate(cfg)
        sim = SimulatorEstimator(spec).evaluate(cfg)
        assert sim.fidelity == "sim"
        assert sim.breakdown.p2p == 0.0  # folded into measured idle
        assert sim.breakdown.bubble > 0.0
        assert sim.total_time == pytest.approx(an.total_time, rel=0.35)

    def test_single_stage_has_no_pipeline_cost(self):
        spec = get_spec("gpt3-xl")
        cfg = CandidateConfig.create(
            "axonn+samo", g_inter=1, g_data=64, mbs=1, sparsity=0.9
        )
        ev = SimulatorEstimator(spec).evaluate(cfg)
        assert ev.breakdown.bubble == 0.0 and ev.breakdown.p2p == 0.0


# ---------------------------------------------------------------------------
# Cache + Planner
# ---------------------------------------------------------------------------

class TestMemoization:
    def test_repeated_search_reevaluates_nothing(self):
        cache = EvaluationCache()
        p1 = Planner("gpt3-xl", 64, cache=cache)
        r1 = p1.plan()
        assert p1.stats.evaluated == p1.stats.candidates > 0
        assert p1.stats.cache_hits == 0

        p2 = Planner("gpt3-xl", 64, cache=cache)
        r2 = p2.plan()
        assert p2.stats.evaluated == 0
        assert p2.stats.cache_hits == p2.stats.candidates
        assert r2.best.config == r1.best.config
        assert r2.best.total_time == r1.best.total_time

    def test_cache_key_separates_fidelity_budget_and_model(self):
        spec_a, spec_b = get_spec("gpt3-xl"), get_spec("gpt3-2.7b")
        cfg = CandidateConfig.create("axonn", g_inter=8, g_data=8)
        k = make_cache_key(spec_a, SUMMIT, "analytic", cfg)
        assert k != make_cache_key(spec_b, SUMMIT, "analytic", cfg)
        assert k != make_cache_key(spec_a, SUMMIT, "sim", cfg)
        assert k != make_cache_key(spec_a, with_memory_budget(12.0), "analytic", cfg)

    def test_global_cache_is_default(self):
        before = len(GLOBAL_CACHE)
        plan("gpt3-xl", 64)
        assert len(GLOBAL_CACHE) >= before

    def test_overlapping_sweeps_share_entries(self):
        cache = EvaluationCache()
        Planner("gpt3-xl", 64, cache=cache).plan()
        n = len(cache)
        # same space again inside a different planner object
        p = Planner("gpt3-xl", 64, cache=cache)
        p.plan()
        assert len(cache) == n and p.stats.evaluated == 0


class TestPlannerResults:
    def test_acceptance_samo_beats_dense_with_smaller_g_inter(self):
        """ISSUE acceptance: the planner's SAMO pick has smaller G_inter
        and higher estimated throughput than the dense baseline."""
        res = plan("gpt3-2.7b", 512, sparsities=(0.9,))
        samo = res.best_for("axonn+samo")
        dense = res.best_for("axonn")
        assert samo is not None and dense is not None
        assert samo.config.g_inter < dense.config.g_inter
        assert samo.throughput > dense.throughput
        assert res.best.config.framework == "axonn+samo"

    def test_planner_recovers_partitioner_choice_under_paper_protocol(self):
        """With checkpointing fixed on and mbs=1 (the paper's protocol),
        the planner's per-framework G_inter equals choose_g_inter's."""
        spec = get_spec("gpt3-2.7b")
        res = plan(
            "gpt3-2.7b",
            128,
            microbatch_sizes=(1,),
            explore_no_checkpoint=False,
        )
        samo = res.best_for("axonn+samo")
        dense = res.best_for("axonn")
        assert samo.config.g_inter == choose_g_inter(spec, 128, StorageMode.SAMO, 0.9)
        assert dense.config.g_inter == choose_g_inter(spec, 128, StorageMode.DENSE)

    def test_pareto_frontier_is_nondominated(self):
        res = plan("gpt3-2.7b", 256)
        frontier = res.pareto_frontier()
        assert frontier
        for ev in frontier:
            dominated = any(
                o.throughput > ev.throughput and o.memory_bytes <= ev.memory_bytes
                for o in res.feasible
            )
            assert not dominated
        # frontier extremes: fastest overall and smallest-memory feasible
        assert frontier[0].total_time == res.best.total_time
        min_mem = min(e.memory_bytes for e in res.feasible)
        assert frontier[-1].memory_bytes == min_mem

    def test_infeasible_budget_reports_gracefully(self):
        res = plan("gpt3-13b", 256, budget_gb=5.5)  # below framework overhead
        assert res.feasible == []
        with pytest.raises(RuntimeError, match="no feasible configuration"):
            _ = res.best
        assert "no feasible" in res.report().lower()

    def test_report_contains_why_and_stats(self):
        res = plan("gpt3-2.7b", 512)
        text = res.report()
        assert "Best config" in text
        assert "Pareto frontier" in text
        assert "Why:" in text
        assert "cache hits" in text

    def test_sim_fidelity_end_to_end(self):
        res = plan("gpt3-xl", 64, fidelity="sim", microbatch_sizes=(1,))
        assert res.fidelity == "sim"
        assert res.best.fidelity == "sim"

    def test_cnn_planning(self):
        res = plan("vgg19", 16)
        assert res.best.config.g_inter == 1
        assert res.best.config.framework in ("axonn", "axonn+samo", "deepspeed-3d")

    def test_unknown_fidelity(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            plan("gpt3-xl", 64, fidelity="exact")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestPlanCLI:
    def test_plan_command_runs(self, capsys):
        from repro.cli import main

        assert main(["plan", "--model", "gpt3-xl", "--gpus", "64"]) == 0
        out = capsys.readouterr().out
        assert "Best config for gpt3-xl on 64 GPUs" in out
        assert "Pareto frontier" in out

    def test_plan_listed(self, capsys):
        from repro.cli import main

        main(["list"])
        assert "plan" in capsys.readouterr().out

    def test_plan_budget_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["plan", "--model", "gpt3-xl", "--gpus", "64", "--budget-gb", "12"]
        ) == 0
        assert "12.88 GB" in capsys.readouterr().out  # 12 GiB budget in the title

    def test_plan_paper_protocol_flag(self, capsys):
        from repro.cli import main

        assert main(
            ["plan", "--model", "gpt3-2.7b", "--gpus", "128", "--paper-protocol"]
        ) == 0
        out = capsys.readouterr().out
        assert "ckpt" in out
