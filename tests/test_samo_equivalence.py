"""SAMO ≡ masked-dense training equivalence (DESIGN.md invariant 2).

The paper's correctness argument (Section VI-A) is that AxoNN+SAMO reaches
the same validation perplexity as dense training of the pruned network.
Here we prove the stronger statement our shared-kernel design permits:
with the same mask, data, and hyper-parameters, the *parameter
trajectories are bitwise identical*.
"""

import numpy as np
import pytest

from repro.core import SAMOConfig
from repro.models import GPT, GPT_CONFIGS, build_vgg
from repro.pruning import magnitude_prune, random_prune
from repro.tensor import Tensor, functional as F
from repro.train import CharCorpus, Trainer


def _trajectories_equal(m1, m2):
    return all(np.array_equal(p1.data, p2.data) for p1, p2 in zip(m1.parameters(), m2.parameters()))


@pytest.mark.parametrize("optimizer", ["adam", "adamw", "sgd"])
def test_gpt_equivalence_all_optimizers(optimizer):
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=8000, seed=0)
    models, trainers = [], []
    for mode in ("samo", "dense"):
        m = GPT(cfg, seed=0)
        mask = magnitude_prune(m, 0.9)
        trainers.append(
            Trainer(m, mode=mode, mask=mask,
                    config=SAMOConfig(optimizer=optimizer, lr=1e-3, weight_decay=0.01))
        )
        models.append(m)
    rng = np.random.default_rng(0)
    for _ in range(4):
        x, y = corpus.sample_batch(2, 24, rng)
        l_samo = trainers[0].step(x, y)
        l_dense = trainers[1].step(x, y)
        assert l_samo == l_dense
    assert _trajectories_equal(*models)


def test_cnn_equivalence_sgd(rng):
    models, trainers = [], []
    for mode in ("samo", "dense"):
        m = build_vgg("vgg-tiny")
        mask = magnitude_prune(m, 0.85)
        trainers.append(Trainer(m, mode=mode, mask=mask,
                                config=SAMOConfig(optimizer="sgd", lr=0.01, momentum=0.9)))
        models.append(m)
    x = rng.normal(size=(4, 3, 32, 32)).astype(np.float32)
    y = rng.integers(0, 10, size=4)

    def loss_fn(model, xb, yb):
        return F.cross_entropy(model(Tensor(xb)), yb)

    for _ in range(3):
        l1 = trainers[0].step(x, y, loss_fn=loss_fn)
        l2 = trainers[1].step(x, y, loss_fn=loss_fn)
        assert l1 == l2
    assert _trajectories_equal(*models)


def test_equivalence_with_random_mask(rng):
    """The equivalence is mask-agnostic (SAMO only consumes indices)."""
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=8000, seed=1)
    m1 = GPT(cfg, seed=5)
    m2 = GPT(cfg, seed=5)
    mask1 = random_prune(m1, 0.8, np.random.default_rng(9))
    mask2 = random_prune(m2, 0.8, np.random.default_rng(9))
    t1 = Trainer(m1, mode="samo", mask=mask1, config=SAMOConfig(optimizer="adamw", lr=2e-3))
    t2 = Trainer(m2, mode="dense", mask=mask2, config=SAMOConfig(optimizer="adamw", lr=2e-3))
    rng2 = np.random.default_rng(2)
    for _ in range(3):
        x, y = corpus.sample_batch(2, 16, rng2)
        t1.step(x, y)
        t2.step(x, y)
    assert _trajectories_equal(m1, m2)


def test_loss_decreases_under_samo():
    """Statistical efficiency sanity: SAMO training actually learns."""
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=20000, seed=0)
    m = GPT(cfg, seed=0)
    mask = magnitude_prune(m, 0.9)
    t = Trainer(m, mode="samo", mask=mask, config=SAMOConfig(optimizer="adamw", lr=3e-3))
    rng = np.random.default_rng(0)
    for _ in range(25):
        x, y = corpus.sample_batch(8, 32, rng)
        t.step(x, y)
    first = np.mean(t.log.losses[:5])
    last = np.mean(t.log.losses[-5:])
    assert last < first - 0.2


def test_memory_vs_dense_measured():
    """SAMO's measured model state is far below the dense trainer's."""
    cfg = GPT_CONFIGS["gpt3-tiny"]
    m1, m2 = GPT(cfg, seed=0), GPT(cfg, seed=0)
    mask1, mask2 = magnitude_prune(m1, 0.9), magnitude_prune(m2, 0.9)
    t_samo = Trainer(m1, mode="samo", mask=mask1)
    t_dense = Trainer(m2, mode="dense", mask=mask2)
    b_samo = t_samo.model_state_bytes()["total"]
    b_dense = t_dense.model_state_bytes()["total"]
    savings = 1 - b_samo / b_dense
    assert 0.70 < savings < 0.80  # Fig. 2 band at p=0.9
