"""Reporting helpers used by the benchmark harness."""

from repro.reporting import format_bytes, format_seconds, log2_axis_plot, render_table, series_plot


class TestTables:
    def test_render_basic(self):
        out = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], title="T")
        assert "T" in out and "a" in out and "10" in out

    def test_empty(self):
        assert "empty" in render_table([])

    def test_column_subset_and_alignment(self):
        out = render_table([{"x": 1, "y": 2}], columns=["y"])
        assert "x" not in out.splitlines()[0]

    def test_format_bytes(self):
        assert format_bytes(80_160_000_000) == "80.16 GB"
        assert format_bytes(1500) == "1.50 KB"
        assert format_bytes(10) == "10 B"

    def test_format_seconds(self):
        assert format_seconds(1.5) == "1.50 s"
        assert format_seconds(0.0021) == "2.10 ms"


class TestPlots:
    def test_series_plot_contains_marks(self):
        out = series_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, [1, 2, 3])
        assert "o" in out and "x" in out and "legend" in out

    def test_log_plot(self):
        out = log2_axis_plot({"t": [0.1, 1.0, 10.0]}, [64, 128, 256], title="scaling")
        assert "scaling" in out

    def test_flat_series_ok(self):
        assert "legend" in series_plot({"c": [5.0, 5.0]}, [0, 1])

    def test_empty_series(self):
        assert series_plot({}, []) == "(no data)"
