"""Functional inter-layer parallel training over thread ranks.

Verifies the executable pipeline (activations downstream, activation
gradients upstream) against single-process training — the runnable
counterpart of the AxoNN schedule whose *timing* the simulator models.
"""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.core import SAMOConfig
from repro.parallel import (
    BucketedGradSync,
    PipelineStageTrainer,
    StageModule,
    partition_module_list,
)
from repro.pruning import magnitude_prune
from repro.tensor import GELU, Linear, Sequential, Tensor, functional as F
from repro.train import DenseMixedPrecisionState

HID = 16
N_BLOCKS = 4


def make_blocks(seed=0):
    rng = np.random.default_rng(seed)
    return [Sequential(Linear(HID, HID, rng=rng), GELU()) for _ in range(N_BLOCKS)]


def make_batch(seed=1, n=6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, HID)).astype(np.float32)
    y = rng.integers(0, HID, size=n)
    return x, y


def loss_head(out: Tensor, targets) -> Tensor:
    return F.cross_entropy(out, targets)


class TestPartitionModuleList:
    def test_contiguous_cover(self):
        blocks = make_blocks()
        stages = partition_module_list(blocks, 2)
        assert [len(s) for s in stages] == [2, 2]
        assert stages[0] + stages[1] == blocks

    def test_uneven(self):
        stages = partition_module_list(make_blocks(), 3)
        assert sum(len(s) for s in stages) == N_BLOCKS
        assert all(len(s) >= 1 for s in stages)

    def test_range_check(self):
        with pytest.raises(ValueError):
            partition_module_list(make_blocks(), 5)


def run_pipeline(n_stages, steps=3, samo_sparsity=None, seed=0):
    """Run a pipeline training job; returns last-stage losses."""
    x, y = make_batch()
    # split the batch into 2 microbatches
    mbs = [x[:3], x[3:]]
    tgts = [y[:3], y[3:]]

    def worker(comm):
        blocks = make_blocks(seed)  # same init everywhere; each rank keeps its slice
        stages = partition_module_list(blocks, comm.size)
        tr = PipelineStageTrainer(
            comm,
            stages[comm.rank],
            head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
            loss_head=loss_head if comm.rank == comm.size - 1 else None,
            samo_sparsity=samo_sparsity,
            config=SAMOConfig(optimizer="adam", lr=1e-2),
        )
        out = [tr.train_step(mbs, tgts) for _ in range(steps)]
        params = {n: p.data.copy() for n, p in tr.module.named_parameters()}
        return out, params

    return run_parallel(n_stages, worker)


def run_single_process(steps=3, samo_sparsity=None, seed=0):
    """Reference: same model, same microbatch accumulation, one process."""
    x, y = make_batch()
    mbs = [x[:3], x[3:]]
    tgts = [y[:3], y[3:]]
    blocks = make_blocks(seed)
    model = StageModule(blocks)
    if samo_sparsity is not None:
        from repro.core import SAMOTrainingState

        mask = magnitude_prune(model, samo_sparsity)
        state = SAMOTrainingState(model, mask, SAMOConfig(optimizer="adam", lr=1e-2))
    else:
        state = DenseMixedPrecisionState(model, SAMOConfig(optimizer="adam", lr=1e-2))
    losses = []
    for _ in range(steps):
        vals = []
        for mb, tgt in zip(mbs, tgts):
            loss = F.cross_entropy(model(Tensor(mb)), tgt)
            loss.backward()
            vals.append(loss.item())
            state.compress_gradients()
        state.step()
        losses.append(float(np.mean(vals)))
    return losses, model


class TestPipelineExecution:
    def test_two_stage_matches_single_process(self):
        results = run_pipeline(2)
        pipeline_losses = results[1][0]  # last stage reports losses
        ref_losses, _ = run_single_process()
        assert pipeline_losses == pytest.approx(ref_losses, rel=1e-5)

    def test_four_stage_matches_single_process(self):
        results = run_pipeline(4)
        pipeline_losses = results[3][0]
        ref_losses, _ = run_single_process()
        assert pipeline_losses == pytest.approx(ref_losses, rel=1e-5)

    def test_losses_decrease(self):
        results = run_pipeline(2, steps=6)
        losses = results[1][0]
        assert losses[-1] < losses[0]

    def test_non_last_stages_report_none(self):
        results = run_pipeline(3, steps=1)
        assert results[0][0] == [None] and results[1][0] == [None]
        assert results[2][0][0] is not None

    def test_samo_pipeline_trains(self):
        """SAMO-compressed stages train through the pipeline too."""
        results = run_pipeline(2, steps=6, samo_sparsity=0.7)
        losses = results[1][0]
        assert losses[-1] < losses[0]

    def test_samo_pipeline_pruned_weights_stay_zero(self):
        results = run_pipeline(2, steps=3, samo_sparsity=0.8)
        for _, params in results:
            for name, arr in params.items():
                if name.endswith("weight"):
                    # 80% of each stage's weights pruned -> most entries zero
                    zero_frac = float((arr == 0).mean())
                    assert zero_frac > 0.7, (name, zero_frac)

    def test_stage_parameter_updates_match_reference(self):
        """Every stage's weights equal the single-process run's slice."""
        results = run_pipeline(2, steps=2)
        _, ref_model = run_single_process(steps=2)
        ref = dict(ref_model.named_parameters())
        # stage 0 holds blocks 0-1 (named b0, b1 within the stage)
        for stage, offset in ((0, 0), (1, 2)):
            for name, arr in results[stage][1].items():
                # stage-local bK maps to reference b{K+offset}
                idx = int(name.split(".")[0][1:])
                ref_name = f"b{idx + offset}." + name.split(".", 1)[1]
                assert np.allclose(arr, ref[ref_name].data, atol=1e-6), (stage, name)

    def test_microbatch_target_mismatch_raises(self):
        def worker(comm):
            tr = PipelineStageTrainer(
                comm, make_blocks()[:2],
                head=lambda b: Tensor(b),
                loss_head=loss_head,
            )
            tr.train_step([np.zeros((2, HID), np.float32)], [])

        with pytest.raises(Exception):
            run_parallel(1, worker)


class TestCheckpointedStages:
    """Activation checkpointing composed into the executable pipeline:
    losses and parameters must match the non-checkpointed run exactly."""

    def _run(self, checkpoint_segments, steps=3):
        x, y = make_batch()
        mbs = [x[:3], x[3:]]
        tgts = [y[:3], y[3:]]

        def worker(comm):
            blocks = make_blocks(0)
            stages = partition_module_list(blocks, comm.size)
            tr = PipelineStageTrainer(
                comm,
                stages[comm.rank],
                head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
                loss_head=loss_head if comm.rank == comm.size - 1 else None,
                samo_sparsity=0.8,
                config=SAMOConfig(optimizer="adam", lr=1e-2),
                checkpoint_segments=checkpoint_segments,
            )
            out = [tr.train_step(mbs, tgts) for _ in range(steps)]
            params = {n: p.data.copy() for n, p in tr.module.named_parameters()}
            return out, params

        return run_parallel(2, worker)

    def test_checkpointed_matches_plain(self):
        plain = self._run(checkpoint_segments=0)
        ckpt = self._run(checkpoint_segments=2)
        plain_losses = plain[-1][0]
        ckpt_losses = ckpt[-1][0]
        assert plain_losses == pytest.approx(ckpt_losses, rel=1e-6)
        for (_, pp), (_, cp) in zip(plain, ckpt):
            for name in pp:
                assert np.allclose(pp[name], cp[name], atol=1e-6), name

    def test_invalid_segment_count(self):
        with pytest.raises(ValueError, match="checkpoint_segments"):
            StageModule(make_blocks()[:2], checkpoint_segments=3)


class TestDenseCheckpointedStages:
    """checkpoint_segments=0 vs >0 must also agree for the *dense* state
    (TestCheckpointedStages pins the SAMO flavour)."""

    def _run(self, checkpoint_segments, steps=3):
        x, y = make_batch()
        mbs = [x[:3], x[3:]]
        tgts = [y[:3], y[3:]]

        def worker(comm):
            blocks = make_blocks(0)
            stages = partition_module_list(blocks, comm.size)
            tr = PipelineStageTrainer(
                comm,
                stages[comm.rank],
                head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
                loss_head=loss_head if comm.rank == comm.size - 1 else None,
                config=SAMOConfig(optimizer="adam", lr=1e-2),
                checkpoint_segments=checkpoint_segments,
            )
            out = [tr.train_step(mbs, tgts) for _ in range(steps)]
            params = {n: p.data.copy() for n, p in tr.module.named_parameters()}
            return out, params

        return run_parallel(2, worker)

    def test_dense_checkpointed_matches_plain(self):
        plain = self._run(checkpoint_segments=0)
        ckpt = self._run(checkpoint_segments=2)
        assert plain[-1][0] == pytest.approx(ckpt[-1][0], rel=1e-6)
        for (_, pp), (_, cp) in zip(plain, ckpt):
            for name in pp:
                assert np.allclose(pp[name], cp[name], atol=1e-6), name


class TestGPipeSchedule:
    """The all-forwards-then-all-backwards order is numerically identical
    to the sequential order — same graphs, same gradient accumulation."""

    def _run(self, schedule, n_stages=2, steps=3):
        x, y = make_batch()
        mbs = [x[:3], x[3:]]
        tgts = [y[:3], y[3:]]

        def worker(comm):
            blocks = make_blocks(0)
            stages = partition_module_list(blocks, comm.size)
            tr = PipelineStageTrainer(
                comm,
                stages[comm.rank],
                head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
                loss_head=loss_head if comm.rank == comm.size - 1 else None,
                config=SAMOConfig(optimizer="adam", lr=1e-2),
            )
            out = [tr.train_step(mbs, tgts, schedule=schedule) for _ in range(steps)]
            params = {n: p.data.copy() for n, p in tr.module.named_parameters()}
            return out, params

        return run_parallel(n_stages, worker)

    def test_gpipe_matches_sequential(self):
        seq = self._run("sequential")
        gp = self._run("gpipe")
        assert seq[-1][0] == pytest.approx(gp[-1][0], rel=1e-6)
        for (_, sp), (_, gpp) in zip(seq, gp):
            for name in sp:
                assert np.allclose(sp[name], gpp[name], atol=1e-6), name

    def test_gpipe_matches_single_process(self):
        gp = self._run("gpipe", n_stages=4)
        ref_losses, _ = run_single_process()
        assert gp[-1][0] == pytest.approx(ref_losses, rel=1e-5)

    def test_unknown_schedule_rejected(self):
        def worker(comm):
            tr = PipelineStageTrainer(
                comm, make_blocks()[:1],
                head=lambda b: Tensor(b), loss_head=loss_head,
            )
            tr.train_step([np.zeros((2, HID), np.float32)], [np.zeros(2, np.int64)],
                          schedule="1f1b")

        with pytest.raises(CommError, match="schedule"):
            run_parallel(1, worker)

    def test_event_ledger_shape(self):
        """record_events captures program order: m forwards (each followed
        by the downstream send), then m (recv, backward) pairs on stage 0."""
        x, y = make_batch()
        mbs = [x[:3], x[3:]]
        tgts = [y[:3], y[3:]]

        def worker(comm):
            blocks = make_blocks(0)
            stages = partition_module_list(blocks, comm.size)
            tr = PipelineStageTrainer(
                comm,
                stages[comm.rank],
                head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
                loss_head=loss_head if comm.rank == comm.size - 1 else None,
                record_events=True,
            )
            tr.train_step(mbs, tgts, schedule="gpipe")
            return tr.events, dict(tr.phase_seconds)

        results = run_parallel(2, worker)
        m = len(mbs)
        ev0, wall0 = results[0]
        kinds0 = [e[0] for e in ev0]
        # stage 0: fwd+send per microbatch, then recv+bwd per microbatch
        assert kinds0 == ["fwd", "send"] * m + ["recv", "bwd"] * m
        ev1, _ = results[1]
        kinds1 = [e[0] for e in ev1]
        # last stage: recv+fwd per microbatch, then bwd+send per microbatch
        assert kinds1 == ["recv", "fwd"] * m + ["bwd", "send"] * m
        # sends carry (peer, tag, nbytes) with a positive payload size
        for e in ev0 + ev1:
            if e[0] in ("send", "recv"):
                assert len(e) == 4 and e[3] > 0
        # wall clock accumulated in every phase it executed
        assert wall0["forward"] > 0 and wall0["backward"] > 0 and wall0["p2p"] > 0


class TestBucketedGradSync:
    """Bucketing must be a pure transport choice: any bucket count gives
    bit-identical gradients to the per-tensor backend all-reduce."""

    N_REPLICAS = 2

    def _replica_grads(self, grad_sync_factory):
        """Train one data-parallel step per rank; returns each rank's
        post-sync fp16 gradient buffers plus the sync object's counters."""

        def worker(comm):
            rng = np.random.default_rng(0)
            blocks = [Sequential(Linear(HID, HID, rng=rng), GELU()) for _ in range(3)]
            model = StageModule(blocks)
            state = DenseMixedPrecisionState(model, SAMOConfig(optimizer="adam"))
            data_rng = np.random.default_rng(100 + comm.rank)
            x = data_rng.normal(size=(4, HID)).astype(np.float32)
            y = data_rng.integers(0, HID, size=4)
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            state.compress_gradients()
            sync = grad_sync_factory(comm)
            sync(state)
            grads = [g.copy() for g in state.grad16 if g is not None]
            stats = (
                (sync.buckets_sent, sync.bytes_communicated, list(sync.bucket_bytes))
                if isinstance(sync, BucketedGradSync) else None
            )
            return grads, stats

        return run_parallel(self.N_REPLICAS, worker)

    @staticmethod
    def _per_tensor_reference(comm):
        """The unbucketed baseline: one backend all-reduce per tensor."""

        def sync(state):
            for g in state.grad16:
                if g is None:
                    continue
                total = comm.allreduce(g.astype(np.float32).ravel())
                g[...] = (total / comm.size).reshape(g.shape).astype(g.dtype)

        return sync

    def test_single_bucket_bit_exact_vs_per_tensor(self):
        ref = self._replica_grads(self._per_tensor_reference)
        one = self._replica_grads(lambda comm: BucketedGradSync(comm, n_buckets=1))
        for (rg, _), (og, stats) in zip(ref, one):
            assert stats[0] == 1  # exactly one bucket on the wire
            for r, o in zip(rg, og):
                assert np.array_equal(r, o)

    def test_more_buckets_than_tensors(self):
        """n_buckets past the tensor count degrades to per-tensor buckets —
        never empty messages, still bit-exact."""
        ref = self._replica_grads(self._per_tensor_reference)
        many = self._replica_grads(lambda comm: BucketedGradSync(comm, n_buckets=64))
        n_tensors = len(ref[0][0])
        for (rg, _), (mg, stats) in zip(ref, many):
            buckets_sent, nbytes, bucket_bytes = stats
            assert buckets_sent <= n_tensors
            assert all(b > 0 for b in bucket_bytes)
            assert sum(bucket_bytes) == nbytes == sum(g.nbytes for g in rg)
            for r, m in zip(rg, mg):
                assert np.array_equal(r, m)

    def test_replicas_agree_after_sync(self):
        results = self._replica_grads(lambda comm: BucketedGradSync(comm, n_buckets=3))
        (g0, _), (g1, _) = results
        for a, b in zip(g0, g1):
            assert np.array_equal(a, b)

    def test_bucket_count_validated(self):
        def worker(comm):
            BucketedGradSync(comm, n_buckets=0)

        with pytest.raises(CommError, match="n_buckets"):
            run_parallel(1, worker)


class TestExecutionSpans:
    """With the process-wide tracer enabled, the executed pipeline and
    the bucketed sync emit wall-clock spans per phase — the raw material
    of the measured fidelity's profiles."""

    def test_spans_cover_every_phase(self):
        from repro.obs import Tracer, observed

        x, y = make_batch()
        mbs = [x[:3], x[3:]]
        tgts = [y[:3], y[3:]]

        def worker(comm):
            blocks = make_blocks(0)
            stages = partition_module_list(blocks, comm.size)
            tr = PipelineStageTrainer(
                comm,
                stages[comm.rank],
                head=(lambda b: Tensor(b)) if comm.rank == 0 else None,
                loss_head=loss_head if comm.rank == comm.size - 1 else None,
            )
            tr.grad_sync = BucketedGradSync(comm, n_buckets=2)
            tr.train_step(mbs, tgts, schedule="gpipe")
            return tr.grad_sync.seconds

        tracer = Tracer()
        with observed(tracer=tracer):
            sync_seconds = run_parallel(2, worker)
        cats = {s.category for s in tracer.spans}
        assert {"exec.forward", "exec.backward", "exec.p2p", "exec.collective"} <= cats
        # both ranks emitted onto their own tracks
        assert {"rank0", "rank1"} <= set(tracer.tracks())
        # the sync's own wall clock accumulated on every rank
        assert all(s > 0 for s in sync_seconds)
