"""The heterogeneity-aware pipeline engine and its scenario layer.

Covers the uniform/free-message degeneracy (the engine must reproduce
Eq. 6-7 exactly), the deadlock guard under skewed stage times, per-link
delays and FIFO scheduling, link-contention serialization, the ascii
renderer's partial-final-column fix, and the threading of scenarios
through ``simulate_batch``, the sim estimator, and the planner.
"""

import pytest

from repro.cluster import SerialResource, Topology
from repro.models import get_spec
from repro.parallel import (
    SCENARIOS,
    PipelineScenario,
    bubble_time,
    get_scenario,
    run_scenario,
    simulate_batch,
    simulate_hetero_pipeline,
    simulate_pipeline,
)


class TestUniformLimit:
    """Per-stage sequences with equal entries must behave exactly like the
    historical scalar API — and match the paper's closed form."""

    @pytest.mark.parametrize("g,m", [(2, 4), (3, 5), (4, 8), (8, 16)])
    def test_sequence_inputs_match_scalar_inputs(self, g, m):
        tf, tb = 0.02, 0.06
        scalar = simulate_pipeline(g, m, tf, tb)
        seq = simulate_pipeline(g, m, [tf] * g, [tb] * g, msg_time=[0.0] * (g - 1))
        assert seq.makespan == scalar.makespan
        assert sorted(seq.tasks, key=lambda t: (t.start, t.gpu)) == sorted(
            scalar.tasks, key=lambda t: (t.start, t.gpu)
        )

    @pytest.mark.parametrize("g,m", [(2, 4), (4, 8), (8, 16)])
    def test_uniform_idle_is_eq7_bubble(self, g, m):
        tf, tb = 0.01, 0.03
        trace = simulate_pipeline(g, m, [tf] * g, [tb] * g)
        eq7 = bubble_time(g, tf * g, tb * g)
        for gpu in range(g):
            assert trace.idle_time(gpu) == pytest.approx(eq7, rel=1e-9)

    def test_uniform_limit_with_contention_flag(self):
        """Free messages never contend: the flag must not perturb the
        uniform limit."""
        g, m = 4, 8
        trace = simulate_pipeline(g, m, 1.0, 2.0, link_contention=True)
        assert trace.idle_time(0) == pytest.approx(bubble_time(g, 4.0, 8.0), rel=1e-9)


class TestHeterogeneousStages:
    def test_skewed_stages_complete(self):
        """Deadlock guard holds with strongly skewed per-stage times."""
        tf = [0.1, 1.0, 0.3, 2.5]
        tb = [0.2, 2.0, 0.6, 5.0]
        trace = simulate_pipeline(4, 8, tf, tb)
        assert len(trace.tasks) == 2 * 4 * 8
        # bottleneck bound: the slowest stage is never idle between its
        # m microbatches once it has work
        assert trace.makespan >= 8 * (tf[3] + tb[3])

    def test_straggler_raises_other_gpus_idle(self):
        g, m = 4, 8
        uniform = simulate_pipeline(g, m, 1.0, 2.0)
        straggler = simulate_pipeline(g, m, [1.0, 1.0, 1.0, 1.5], [2.0, 2.0, 2.0, 3.0])
        assert straggler.makespan > uniform.makespan
        assert straggler.idle_time(0) > uniform.idle_time(0)

    def test_skew_with_fifo_scheduling_completes(self):
        """prefer_backward=False (arrival order) under skew + links."""
        trace = simulate_pipeline(
            4, 8, [0.5, 1.5, 1.0, 2.0], [1.0, 3.0, 2.0, 4.0],
            msg_time=[0.2, 0.4, 0.1], prefer_backward=False,
        )
        assert len(trace.tasks) == 2 * 4 * 8

    def test_skew_without_in_flight_bound_completes(self):
        trace = simulate_pipeline(
            3, 6, [1.0, 2.0, 0.5], [2.0, 4.0, 1.0], bound_in_flight=False
        )
        assert len(trace.tasks) == 2 * 3 * 6
        assert trace.peak_in_flight[0] == 6  # GPipe-style: all forwards pile up

    def test_blocking_sends_with_hetero_links(self):
        async_tr = simulate_pipeline(3, 5, 1.0, 2.0, msg_time=[0.5, 0.1])
        blocking = simulate_pipeline(
            3, 5, 1.0, 2.0, msg_time=[0.5, 0.1], blocking_sends=True
        )
        assert blocking.makespan >= async_tr.makespan
        assert len(blocking.tasks) == 2 * 3 * 5


class TestPerLinkDelays:
    def test_slow_link_dominates(self):
        g, m = 4, 8
        fast = simulate_pipeline(g, m, 1.0, 2.0, msg_time=[0.1, 0.1, 0.1])
        slow = simulate_pipeline(g, m, 1.0, 2.0, msg_time=[0.1, 2.0, 0.1])
        assert slow.makespan > fast.makespan
        # the stage downstream of the slow link starves
        assert slow.idle_time(2) > fast.idle_time(2)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            simulate_pipeline(4, 2, 1.0, 2.0, msg_time=[0.1, 0.1])
        with pytest.raises(ValueError):
            simulate_pipeline(4, 2, [1.0, 2.0], 2.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            simulate_pipeline(2, 2, [1.0, -0.5], 2.0)


class TestLinkContention:
    def test_serialization_delays_overlapping_sends(self):
        """Compute faster than the link: async sends overlap without
        contention, queue with it."""
        free = simulate_pipeline(2, 4, 0.1, 0.1, msg_time=1.0)
        cont = simulate_pipeline(2, 4, 0.1, 0.1, msg_time=1.0, link_contention=True)
        assert cont.makespan > free.makespan
        assert cont.link_busy == [pytest.approx(8 * 1.0)]  # 4 fwd + 4 bwd messages

    def test_contention_never_helps(self):
        for msg in (0.05, 0.5, 1.5):
            free = simulate_pipeline(3, 6, 0.3, 0.6, msg_time=msg)
            cont = simulate_pipeline(3, 6, 0.3, 0.6, msg_time=msg, link_contention=True)
            assert cont.makespan >= free.makespan - 1e-12

    def test_serial_resource_fifo(self):
        r = SerialResource("l")
        assert r.acquire(0.0, 2.0) == (0.0, 2.0)
        assert r.acquire(1.0, 2.0) == (2.0, 4.0)  # queued behind the first
        assert r.acquire(9.0, 1.0) == (9.0, 10.0)  # idle gap: starts immediately
        assert r.busy_time == pytest.approx(5.0)
        with pytest.raises(ValueError):
            r.acquire(0.0, -1.0)


class TestAsciiRendering:
    def test_final_partial_column_rendered(self):
        """Regression: int(round(makespan/unit)) dropped the last cells
        whenever the makespan was not a multiple of the unit."""
        trace = simulate_pipeline(3, 5, 1.0, 2.0)  # makespan 21
        art = trace.ascii(0.8)  # 21/0.8 = 26.25 -> 27 columns, round() gave 26
        rows = art.splitlines()
        assert len({len(r) for r in rows}) == 1
        # stage 0 finishes last: its final backward must survive rendering
        assert rows[0].rstrip().endswith("[4]")

    def test_fractional_tasks_render(self):
        trace = simulate_pipeline(1, 1, 0.5, 0.9)  # makespan 1.4
        art = trace.ascii(1.0)
        assert "[0]" in art

    def test_integral_makespan_unchanged(self):
        trace = simulate_pipeline(3, 5, 1.0, 2.0)
        assert len(trace.ascii(1.0).splitlines()[0]) == len("GPU 0: ") + 3 * 21


class TestTopologyLinks:
    def test_pipeline_link_times_cross_node_slower(self):
        topo = Topology(12)  # 6 GPUs/node: link 5-6 crosses nodes
        times = topo.pipeline_link_times(list(range(8)), 10**7)
        assert times[5] > times[0]
        assert times[0] == times[1]

    def test_per_link_payloads(self):
        topo = Topology(4)
        a, b = topo.pipeline_link_times([0, 1, 2], [10**6, 2 * 10**6])
        assert b > a

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Topology(4).pipeline_link_times([0, 1, 2], [10**6])


class TestScenarios:
    def test_presets_all_run(self):
        for name in SCENARIOS:
            trace, info = run_scenario(name, g_inter=4, n_microbatches=6)
            assert len(trace.tasks) == 2 * 4 * 6, name
            assert info["makespan"] == trace.makespan

    def test_uniform_preset_degenerates_to_eq7(self):
        trace, info = run_scenario("uniform", g_inter=4, n_microbatches=8)
        assert info["mean_idle"] == pytest.approx(info["eq7_bubble"], rel=1e-9)

    def test_straggler_preset_worse_than_uniform(self):
        _, uni = run_scenario("uniform")
        _, strag = run_scenario("straggler")
        assert strag["makespan"] > uni["makespan"]

    def test_slow_link_preset_worse_than_flat_links(self):
        _, flat = run_scenario("uniform", msg_time=0.25)
        _, slow = run_scenario("slow-link", msg_time=0.25)
        assert slow["makespan"] > flat["makespan"]

    def test_skewed_preserves_mean_load(self):
        sc = get_scenario("skewed")
        scaled = sc.scale_stage_times([1.0] * 6)
        assert sum(scaled) == pytest.approx(6.0)
        assert scaled[0] < scaled[-1]

    def test_indices_resolve_modulo_depth(self):
        sc = PipelineScenario("x", straggler_stage=-1, straggler_factor=2.0)
        assert sc.scale_stage_times([1.0, 1.0, 1.0]) == [1.0, 1.0, 2.0]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            get_scenario("nonsense")
        assert get_scenario(None) is None
        sc = SCENARIOS["straggler"]
        assert get_scenario(sc) is sc


class TestModelDerivedPipeline:
    def test_stage_times_conserve_model_time(self):
        spec = get_spec("gpt3-xl")
        trace = simulate_hetero_pipeline(
            spec, g_inter=4, m=8, mbs=1, t_f_model=0.4, t_b_model=1.2
        )
        assert sum(trace.t_f_stages) == pytest.approx(0.4, rel=1e-9)
        assert sum(trace.t_b_stages) == pytest.approx(1.2, rel=1e-9)
        assert len(trace.tasks) == 2 * 4 * 8

    def test_intra_node_hops_cheaper(self):
        """With stages placed densely on ranks, hops inside a node run at
        NVLink class and the node-boundary hop costs more."""
        spec = get_spec("gpt3-2.7b")
        trace = simulate_hetero_pipeline(
            spec, g_inter=8, m=4, mbs=1, t_f_model=0.4, t_b_model=1.2, n_gpus=8
        )
        assert trace.link_times[5] > trace.link_times[0]  # rank 5 -> 6 crosses nodes

    def test_scenario_applied_on_top(self):
        spec = get_spec("gpt3-xl")
        base = simulate_hetero_pipeline(
            spec, g_inter=4, m=8, mbs=1, t_f_model=0.4, t_b_model=1.2
        )
        worse = simulate_hetero_pipeline(
            spec, g_inter=4, m=8, mbs=1, t_f_model=0.4, t_b_model=1.2,
            scenario="straggler",
        )
        assert worse.makespan > base.makespan

    def test_single_stage_trivial(self):
        spec = get_spec("gpt3-xl")
        trace = simulate_hetero_pipeline(
            spec, g_inter=1, m=4, mbs=1, t_f_model=0.4, t_b_model=1.2
        )
        assert trace.link_times == []
        assert trace.makespan == pytest.approx(4 * 1.6)


class TestBatchModelThreading:
    def test_sim_fidelity_runs_and_folds_p2p(self):
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 256, "axonn", pipeline_fidelity="sim")
        assert b.p2p == 0.0
        assert b.bubble > 0.0
        assert b.notes["pipeline_fidelity"] == "sim"

    def test_scenario_implies_sim_and_costs_more(self):
        """A straggler slow enough to dominate the bottleneck stage must
        lengthen the batch. (Mild stragglers can legitimately *shorten*
        an already-skewed schedule — a Graham-style scheduling anomaly
        the event-driven engine captures and the closed form cannot —
        so the test pins a dominating factor.)"""
        spec = get_spec("gpt3-2.7b")
        base = simulate_batch(spec, 256, "axonn", pipeline_fidelity="sim")
        hard = PipelineScenario(
            "hard-straggler", straggler_stage=-1, straggler_factor=3.0
        )
        strag = simulate_batch(spec, 256, "axonn", scenario=hard)
        assert strag.notes["pipeline_fidelity"] == "sim"
        assert strag.total > base.total

    def test_sim_close_to_analytic_for_uniform_models(self):
        """GPT stage loads are near-uniform, so the sim path should land
        near the closed form (warmup/messaging effects only)."""
        spec = get_spec("gpt3-2.7b")
        analytic = simulate_batch(spec, 256, "axonn")
        sim = simulate_batch(spec, 256, "axonn", pipeline_fidelity="sim")
        assert sim.total == pytest.approx(analytic.total, rel=0.35)

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(get_spec("gpt3-xl"), 64, "axonn", pipeline_fidelity="exact")


class TestPlannerScenario:
    def test_plan_under_straggler(self):
        from repro.autotune import plan

        res = plan("gpt3-xl", 32, fidelity="sim", scenario="straggler",
                   microbatch_sizes=(1,))
        assert res.fidelity == "sim@straggler"
        assert res.best.fidelity == "sim@straggler"
        assert res.best.total_time > 0

    def test_single_stage_configs_still_pay_the_scenario(self):
        """Regression: g_inter == 1 short-circuited past the scenario, so
        degraded-machine rankings spuriously favoured single-stage plans
        (a straggler GPU stalls a data-parallel replica all the same)."""
        from repro.autotune.config import CandidateConfig
        from repro.autotune.estimator import SimulatorEstimator

        spec = get_spec("gpt3-xl")
        cfg = CandidateConfig.create("axonn", g_inter=1, g_data=32)
        clean = SimulatorEstimator(spec).evaluate(cfg)
        degraded = SimulatorEstimator(spec, scenario="straggler").evaluate(cfg)
        assert clean.breakdown.bubble == 0.0
        assert degraded.breakdown.bubble > 0.0
        assert degraded.total_time > clean.total_time

    def test_scenario_requires_sim(self):
        from repro.autotune import Planner

        with pytest.raises(ValueError):
            Planner("gpt3-xl", 32, fidelity="analytic", scenario="straggler")

    def test_scenario_changes_cache_identity(self):
        from repro.autotune.cache import make_cache_key
        from repro.autotune.config import CandidateConfig
        from repro.cluster import SUMMIT

        spec = get_spec("gpt3-xl")
        cfg = CandidateConfig.create("axonn", g_inter=4, g_data=8)
        assert make_cache_key(spec, SUMMIT, "sim", cfg) != make_cache_key(
            spec, SUMMIT, "sim@straggler", cfg
        )

    def test_same_name_different_params_do_not_alias(self):
        """Regression: cache keys once carried only the scenario *name*,
        so re-planning with a reparameterised scenario of the same name
        returned the first run's stale evaluations."""
        from repro.autotune import Planner
        from repro.autotune.cache import EvaluationCache

        cache = EvaluationCache()
        mild = PipelineScenario("s", straggler_stage=-1, straggler_factor=1.0)
        harsh = PipelineScenario("s", straggler_stage=-1, straggler_factor=50.0)
        kwargs = dict(fidelity="sim", microbatch_sizes=(1,), cache=cache)

        def pipelined_bubbles(res):
            return {
                e.config: e.breakdown.bubble
                for e in res.evaluations
                if e.config.g_inter > 1
            }

        b_mild = pipelined_bubbles(Planner("gpt3-xl", 32, scenario=mild, **kwargs).plan())
        b_harsh = pipelined_bubbles(Planner("gpt3-xl", 32, scenario=harsh, **kwargs).plan())
        shared = set(b_mild) & set(b_harsh)
        assert shared
        assert all(b_harsh[c] > b_mild[c] for c in shared)
