"""Full functional AxoNN+SAMO: hybrid inter-layer x data parallelism.

Four thread ranks form a 2 (pipeline stages) x 2 (data replicas) grid —
the paper's G_inter x G_data decomposition executing for real:

* activations/gradients flow along each pipeline (point-to-point);
* each stage all-reduces its **compressed** fp16 gradients across the
  data-parallel replicas before the SAMO optimizer step (Section IV-A);
* the result must match single-process SAMO training on the full batch.
"""

import numpy as np
import pytest

from repro.comm import Communicator, GridLayout, World, run_parallel
from repro.core import SAMOConfig, SAMOTrainingState
from repro.parallel import PipelineStageTrainer, StageModule, partition_module_list
from repro.pruning import magnitude_prune
from repro.tensor import GELU, Linear, Sequential, Tensor, functional as F

HID = 12
N_BLOCKS = 4
G_INTER, G_DATA = 2, 2
WORLD = G_INTER * G_DATA


def make_blocks(seed=3):
    rng = np.random.default_rng(seed)
    return [Sequential(Linear(HID, HID, rng=rng), GELU()) for _ in range(N_BLOCKS)]


def make_data(n=8, seed=11):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, HID)).astype(np.float32)
    y = rng.integers(0, HID, size=n)
    return x, y


def loss_head(out: Tensor, targets) -> Tensor:
    return F.cross_entropy(out, targets)


def build_stage_mask(stage_blocks, sparsity):
    """Deterministic per-stage mask (same on every data replica)."""
    return magnitude_prune(StageModule(stage_blocks), sparsity)


def run_hybrid(steps=3, sparsity=0.75):
    """2x2 hybrid run; returns (last-stage losses per replica, stage params)."""
    x, y = make_data()
    grid = GridLayout(WORLD, g_inter=G_INTER)
    # dedicated worlds: one per pipeline (replica), one per data group (stage)
    pipe_worlds = [World(G_INTER) for _ in range(G_DATA)]
    data_worlds = [World(G_DATA) for _ in range(G_INTER)]

    def worker(comm):
        rank = comm.rank
        stage = grid.stage_of(rank)
        replica = grid.replica_of(rank)
        pipe_comm = Communicator(pipe_worlds[replica], stage)
        data_comm = Communicator(data_worlds[stage], replica)

        blocks = make_blocks()
        stages = partition_module_list(blocks, G_INTER)
        mask = build_stage_mask(stages[stage], sparsity)
        tr = PipelineStageTrainer(
            pipe_comm,
            stages[stage],
            head=(lambda b: Tensor(b)) if stage == 0 else None,
            loss_head=loss_head if stage == G_INTER - 1 else None,
            mask=mask,
            config=SAMOConfig(optimizer="adam", lr=1e-2),
        )

        def sync(state):
            # sparse all-reduce of compressed gradients + dense biases
            for e in state.compressed:
                if e.grad16_c is not None:
                    total = data_comm.allreduce(e.grad16_c.astype(np.float32))
                    e.grad16_c = (total / G_DATA).astype(np.float16)
            for d in state.dense:
                if d.grad16 is not None:
                    total = data_comm.allreduce(d.grad16.astype(np.float32))
                    d.grad16 = (total / G_DATA).astype(np.float16)

        tr.grad_sync = sync

        # each replica trains on its half of the batch, one microbatch of 4
        sl = slice(replica * 4, (replica + 1) * 4)
        losses = []
        for _ in range(steps):
            losses.append(tr.train_step([x[sl]], [y[sl]]))
        params = {n: p.data.copy() for n, p in tr.module.named_parameters()}
        return stage, replica, losses, params

    return x, y, run_parallel(WORLD, worker)


def run_reference(steps=3, sparsity=0.75):
    """Single-process SAMO training on the same two microbatches."""
    x, y = make_data()
    blocks = make_blocks()
    model = StageModule(blocks)
    # the hybrid prunes per stage; reproduce the same union mask by pruning
    # each stage module separately and renaming
    stages = partition_module_list(blocks, G_INTER)
    stage_masks = [build_stage_mask(s, sparsity) for s in stages]
    indices, shapes = {}, {}
    offset = 0
    for si, (s, m) in enumerate(zip(stages, stage_masks)):
        for name in m.indices:
            idx = int(name.split(".")[0][1:])
            global_name = f"b{idx + offset}." + name.split(".", 1)[1]
            indices[global_name] = m.indices[name]
            shapes[global_name] = m.shapes[name]
        offset += len(s)
    from repro.pruning import MaskSet

    mask = MaskSet(indices, shapes)
    state = SAMOTrainingState(model, mask, SAMOConfig(optimizer="adam", lr=1e-2))
    losses = []
    for _ in range(steps):
        vals = []
        for sl in (slice(0, 4), slice(4, 8)):
            loss = F.cross_entropy(model(Tensor(x[sl])), y[sl])
            loss.backward()
            vals.append(loss.item())
            state.compress_gradients()
        # average over the two "replicas" as the hybrid's all-reduce does
        for e in state.compressed:
            e.grad16_c = (e.grad16_c.astype(np.float32) / G_DATA).astype(np.float16)
        for d in state.dense:
            d.grad16 = (d.grad16.astype(np.float32) / G_DATA).astype(np.float16)
        state.step()
        losses.append(float(np.mean(vals)))
    return model, losses


class TestHybridAxoNNSAMO:
    def test_replicas_stay_identical(self):
        _, _, results = run_hybrid()
        by_stage = {}
        for stage, replica, _, params in results:
            by_stage.setdefault(stage, []).append(params)
        for stage, plist in by_stage.items():
            for name in plist[0]:
                assert np.array_equal(plist[0][name], plist[1][name]), (stage, name)

    def test_matches_single_process_reference(self):
        """Hybrid 2x2 AxoNN+SAMO == single-process SAMO (fp16-rounding
        tolerance: the hybrid averages shard gradients where the reference
        accumulates microbatch gradients then averages)."""
        _, _, results = run_hybrid(steps=2)
        ref_model, _ = run_reference(steps=2)
        ref = dict(ref_model.named_parameters())
        for stage, replica, _, params in results:
            offset = stage * (N_BLOCKS // G_INTER)
            for name, arr in params.items():
                idx = int(name.split(".")[0][1:])
                ref_name = f"b{idx + offset}." + name.split(".", 1)[1]
                assert np.allclose(arr, ref[ref_name].data, atol=5e-3), (stage, name)

    def test_training_reduces_loss(self):
        _, _, results = run_hybrid(steps=8)
        last_stage_losses = [r[2] for r in results if r[0] == G_INTER - 1 and r[2][0] is not None]
        for losses in last_stage_losses:
            assert losses[-1] < losses[0]

    def test_pruned_weights_zero_on_every_rank(self):
        _, _, results = run_hybrid(steps=3, sparsity=0.8)
        for _, _, _, params in results:
            for name, arr in params.items():
                if name.endswith("weight"):
                    assert (arr == 0).mean() > 0.7, name
