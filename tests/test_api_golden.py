"""Golden parity: the api redesign must not move a single bit.

The literals below were produced by the pre-refactor entry points
(``simulate_batch`` with the hand-threaded kwargs, PR 1's ``Planner``)
and pin the legacy surface byte-for-byte: every phase of the Figure-8
breakdown, the planner's winning config and its exact batch time. All
arithmetic is pure deterministic float math, so equality is exact — any
drift means the thin-wrapper rewiring changed semantics.
"""

import pytest

from repro.api import Job, Machine, Session
from repro.autotune import EvaluationCache, Planner
from repro.models import get_spec
from repro.parallel import simulate_batch

# (framework -> (compute, p2p, bubble, collective, other, total, mem/GPU))
# from simulate_batch(gpt3-2.7b, 128, fw, sparsity=0.9) @ commit 88bc684
GOLDEN_128 = {
    "axonn": (
        2.6046605470378665, 0.9075848533333334, 0.5697694946645333,
        0.3152289, 0.13023302735189332, 4.527476822387627, 12354112256,
    ),
    "axonn+samo": (
        3.1349712030378667, 0.22689621333333335, 0.3255825683797333,
        0.152202582, 0.13023302735189332, 3.9698855941028266, 11607887360,
    ),
    "deepspeed-3d": (
        2.6046605470378665, 1.1798603093333335, 0.5697694946645333,
        0.3152289, 0.13023302735189332, 4.799752278387627, 12354112256,
    ),
    "sputnik": (
        6.511651367594666, 0.0, 0.0,
        0.306821078, 0.3255825683797333, 7.1440550139744, 13258161152,
    ),
}


class TestLegacySimulateBatchGolden:
    @pytest.mark.parametrize("framework", sorted(GOLDEN_128))
    def test_breakdown_bit_identical(self, framework):
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 128, framework, sparsity=0.9)
        compute, p2p, bubble, coll, other, total, mem = GOLDEN_128[framework]
        assert b.compute == compute
        assert b.p2p == p2p
        assert b.bubble == bubble
        assert b.collective == coll
        assert b.other == other
        assert b.total == total
        assert b.memory_per_gpu == mem

    def test_sim_fidelity_bit_identical(self):
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 128, "axonn", pipeline_fidelity="sim")
        assert b.total == 4.7049458990127

    def test_scenario_still_implies_sim_when_fidelity_unset(self):
        spec = get_spec("gpt3-2.7b")
        b = simulate_batch(spec, 128, "axonn", scenario="straggler")
        assert b.notes["pipeline_fidelity"] == "sim"
        assert b.total == 4.264955131507627

    def test_cnn_pure_dp_bit_identical(self):
        b = simulate_batch(get_spec("vgg19"), 16, "axonn+samo")
        assert b.total == 0.5415167429121711
        assert b.memory_per_gpu == 6024974384

    def test_session_breakdown_equals_legacy(self):
        """The facade and the legacy wrapper are the same numbers."""
        spec = get_spec("gpt3-2.7b")
        legacy = simulate_batch(spec, 128, "axonn+samo", sparsity=0.9)
        job = Job(model="gpt3-2.7b", n_gpus=128, framework="axonn+samo")
        facade = Session(Machine()).breakdown(job)
        assert facade.total == legacy.total
        assert facade.to_dict() == legacy.to_dict()


class TestOverlapPlacementGolden:
    """The new fidelity knobs must leave the pinned numbers untouched
    when off, and strictly improve the right phase when on."""

    def test_overlap_off_is_byte_identical_to_pr4_goldens(self):
        """overlap=False / placement='block' spelled out explicitly must
        reproduce every pinned PR 4 number bit-for-bit."""
        spec = get_spec("gpt3-2.7b")
        for framework, golden in GOLDEN_128.items():
            b = simulate_batch(
                spec, 128, framework, sparsity=0.9,
                overlap=False, placement="block",
            )
            assert b.total == golden[5], framework
        b = simulate_batch(
            spec, 128, "axonn", pipeline_fidelity="sim",
            overlap=False, placement="block",
        )
        assert b.total == 4.7049458990127

    def test_overlap_exposed_comm_golden(self):
        """Pinned overlap numbers under per-stage payloads.

        Stage 0 carries the embedding, so its gradient share is ~1.59x
        the uniform phi/G_inter shard and its ring overhangs the drain
        further than the uniform additive model charges: exposed may
        exceed ``additive`` (the accounting identity ``exposed + hidden
        == additive`` still holds, with ``hidden`` negative here —
        derivation in docs/cost_model.md)."""
        spec = get_spec("gpt3-2.7b")
        add = simulate_batch(spec, 128, "axonn", scenario="degraded-ring")
        ov = simulate_batch(
            spec, 128, "axonn", scenario="degraded-ring", overlap=True
        )
        assert add.collective == 0.6259577999999999
        assert ov.collective == 0.9319272578604592
        assert ov.collective_additive == add.collective
        assert ov.collective_hidden == add.collective - ov.collective

    def test_session_place_never_worse_golden(self):
        job = Job(model="gpt3-2.7b", n_gpus=16)
        res = Session(Machine()).place(job)
        assert res.makespan <= res.default_makespan
        assert res.default_makespan == 27.766624348680676


class TestLegacyPlannerGolden:
    def test_analytic_plan_bit_identical(self):
        res = Planner("gpt3-xl", 64, cache=EvaluationCache()).plan()
        assert res.best.config.canonical_key() == (
            "axonn+samo", 1, 1, 64, 4, False, "samo", 0.9
        )
        assert res.best.total_time == 2.3654800399331952
        assert res.best.memory_bytes == 16320832312
        assert len(res.evaluations) == 233
        assert len(res.feasible) == 233

    def test_sim_scenario_plan_bit_identical(self):
        res = Planner(
            "gpt3-xl", 32, fidelity="sim", scenario="straggler",
            microbatch_sizes=(1,), cache=EvaluationCache(),
        ).plan()
        assert res.fidelity == "sim@straggler"
        assert res.best.config.canonical_key() == (
            "axonn", 1, 8, 4, 1, False, "dense", 0.0
        )
        assert res.best.total_time == 5.64271813216939

    def test_session_plan_equals_planner(self):
        cache = EvaluationCache()
        legacy = Planner("gpt3-xl", 64, cache=cache).plan()
        facade = Session(Machine(), cache=EvaluationCache()).plan(
            Job(model="gpt3-xl", n_gpus=64)
        )
        assert [e.config for e in facade.feasible] == [
            e.config for e in legacy.feasible
        ]
        assert facade.best.total_time == legacy.best.total_time
