"""Edge cases and cross-module behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.cluster import SUMMIT, EventLoop
from repro.cluster.calibration import SummitCalibration
from repro.models import GPT_CONFIGS, GPTConfig, get_spec
from repro.parallel import BatchBreakdown, ParallelConfig, simulate_batch
from repro.tensor import Tensor, functional as F


class TestCalibration:
    def test_frozen_dataclass(self):
        with pytest.raises(Exception):
            SUMMIT.p2p_beta = 1.0  # type: ignore[misc]

    def test_paper_constants_present(self):
        """The Section V machine description is encoded verbatim."""
        assert SUMMIT.gpus_per_node == 6
        assert SUMMIT.gpu_memory_bytes == 16 * 1024**3
        assert SUMMIT.peak_fp16_flops == 125e12
        assert SUMMIT.nvlink_bw == 50e9
        assert SUMMIT.ib_bw == 12.5e9

    def test_custom_calibration_changes_results(self):
        import dataclasses

        spec = get_spec("gpt3-xl")
        slow = dataclasses.replace(SummitCalibration(), coll_beta=1e9)
        a = simulate_batch(spec, 128, "axonn")
        b = simulate_batch(spec, 128, "axonn", cal=slow)
        assert b.collective > a.collective


class TestGPTConfig:
    def test_derived_dims(self):
        cfg = GPT_CONFIGS["gpt3-2.7b"]
        assert cfg.d_head == 80 and cfg.d_ff == 4 * 2560

    def test_custom_config(self):
        cfg = GPTConfig("custom", n_layers=2, d_model=32, n_heads=4, vocab_size=64, seq_len=16)
        from repro.models import gpt_spec

        spec = gpt_spec(cfg)
        assert spec.num_layers == 2 + 3  # embedding + blocks + ln_f + head


class TestParallelConfig:
    def test_grid_consistency_enforced(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_gpus=8, g_inter=4, g_data=3, mbs=1, microbatches=1)

    def test_breakdown_speedup_symmetry(self):
        cfg = ParallelConfig(8, 2, 4, 1, 16)
        a = BatchBreakdown("a", "m", cfg, 1.0, 0.0, 0.0, 0.0, 0.0)
        b = BatchBreakdown("b", "m", cfg, 2.0, 0.0, 0.0, 0.0, 0.0)
        assert a.speedup_over(b) == pytest.approx(100.0)
        assert b.speedup_over(a) == pytest.approx(-50.0)


class TestEventLoopAbsolute:
    def test_at_schedules_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_at_rejects_past(self):
        loop = EventLoop()
        loop.at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.at(0.5, lambda: None)


class TestTensorEdgeCases:
    def test_scalar_ops(self):
        t = Tensor(np.array(3.0), requires_grad=True)
        (t * t).backward()
        assert t.grad == pytest.approx(6.0)

    def test_rsub_rdiv(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 - t).backward(np.ones(1))
        assert t.grad[0] == -1.0
        t2 = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 / t2).backward(np.ones(1))
        assert t2.grad[0] == pytest.approx(-2.5)

    def test_comparison_returns_bool_array(self):
        t = Tensor(np.array([1.0, 3.0]))
        assert (t > 2.0).dtype == bool
        assert (t <= Tensor(np.array([1.0, 2.0]))).tolist() == [True, False]

    def test_pow_rejects_tensor_exponent(self):
        t = Tensor(np.ones(3))
        with pytest.raises(TypeError):
            t ** Tensor(np.ones(3))

    def test_len_and_item(self):
        t = Tensor(np.arange(4, dtype=np.float32))
        assert len(t) == 4
        assert Tensor(np.array(7.0)).item() == 7.0

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = t.swapaxes(0, 2)
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        assert t.grad.shape == (2, 3, 4)


class TestWhereMask:
    def test_forward_and_grads(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        mask = np.array([True, False, True, False])
        out = F.where_mask(mask, a, b)
        assert np.array_equal(out.data, np.where(mask, a.data, b.data))
        out.sum().backward()
        assert np.array_equal(a.grad, mask.astype(np.float32))
        assert np.array_equal(b.grad, (~mask).astype(np.float32))


class TestSimulateBatchNotes:
    def test_notes_and_memory_fields_populated(self):
        b = simulate_batch(get_spec("gpt3-xl"), 128, "axonn+samo")
        assert b.memory_per_gpu > 0
        assert "mode" in b.notes and b.notes["mode"] == "samo"
        assert b.notes["overhead"] > 0

    def test_mbs_scaling(self):
        """Larger microbatches -> fewer messages -> less p2p time."""
        spec = get_spec("gpt3-2.7b")
        b1 = simulate_batch(spec, 128, "axonn", mbs=1)
        b2 = simulate_batch(spec, 128, "axonn", mbs=2)
        assert b2.p2p < b1.p2p

    def test_sparsity_affects_samo_memory(self):
        spec = get_spec("gpt3-2.7b")
        lo = simulate_batch(spec, 128, "axonn+samo", sparsity=0.8)
        hi = simulate_batch(spec, 128, "axonn+samo", sparsity=0.95)
        assert hi.memory_per_gpu <= lo.memory_per_gpu
