"""Optimizer kernels, classes, schedules, clipping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim import (
    SGD,
    Adam,
    AdamW,
    Constant,
    StepDecay,
    WarmupCosine,
    adam_kernel,
    clip_grad_norm,
    global_grad_norm,
    sgd_momentum_kernel,
)
from repro.tensor import Linear, Parameter, Sequential, Tensor


def quad_problem(seed=0, n=8):
    """Parameters minimising ||p - target||^2."""
    rng = np.random.default_rng(seed)
    p = Parameter(rng.normal(size=n).astype(np.float32))
    target = rng.normal(size=n).astype(np.float32)
    return p, target


class TestAdamKernel:
    def test_matches_reference_formula(self, rng):
        n = 16
        p = rng.normal(size=n).astype(np.float32)
        g = rng.normal(size=n).astype(np.float32)
        m = np.zeros(n, np.float32)
        v = np.zeros(n, np.float32)
        p2, m2, v2 = p.copy(), m.copy(), v.copy()
        adam_kernel(p, g, m, v, step=1, lr=0.1, beta1=0.9, beta2=0.999,
                    eps=1e-8, weight_decay=0.0, decoupled=False)
        # reference
        m2 = 0.1 * g
        v2 = 0.001 * g * g
        mh, vh = m2 / (1 - 0.9), v2 / (1 - 0.999)
        ref = p2 - 0.1 * mh / (np.sqrt(vh) + 1e-8)
        assert np.allclose(p, ref, atol=1e-6)

    def test_decoupled_decay_shrinks_params_with_zero_grad(self):
        p = np.ones(4, np.float32)
        adam_kernel(p, np.zeros(4, np.float32), np.zeros(4, np.float32),
                    np.zeros(4, np.float32), step=1, lr=0.1, beta1=0.9,
                    beta2=0.999, eps=1e-8, weight_decay=0.1, decoupled=True)
        assert np.allclose(p, 0.99, atol=1e-6)

    def test_coupled_decay_enters_moments(self):
        p = np.ones(4, np.float32)
        m = np.zeros(4, np.float32)
        adam_kernel(p, np.zeros(4, np.float32), m, np.zeros(4, np.float32),
                    step=1, lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8,
                    weight_decay=0.1, decoupled=False)
        assert np.all(m != 0)

    def test_zero_grad_zero_state_is_noop(self):
        p = np.ones(4, np.float32)
        before = p.copy()
        adam_kernel(p, np.zeros(4, np.float32), np.zeros(4, np.float32),
                    np.zeros(4, np.float32), step=1, lr=0.1, beta1=0.9,
                    beta2=0.999, eps=1e-8, weight_decay=0.0, decoupled=False)
        assert np.array_equal(p, before)

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError):
            adam_kernel(np.ones(1), np.ones(1), np.zeros(1), np.zeros(1),
                        step=0, lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8,
                        weight_decay=0.0, decoupled=False)

    @settings(max_examples=25, deadline=None)
    @given(lr=st.floats(1e-5, 1e-1), seed=st.integers(0, 100))
    def test_property_compressed_equals_dense_on_kept(self, lr, seed):
        """Adam on a gathered slice == gathered result of dense Adam with
        zero gradients at pruned positions — SAMO's core soundness."""
        rng = np.random.default_rng(seed)
        n = 32
        p = rng.normal(size=n).astype(np.float32)
        g = rng.normal(size=n).astype(np.float32)
        ind = np.sort(rng.choice(n, size=n // 2, replace=False))
        keep = np.zeros(n, bool)
        keep[ind] = True

        # dense path: masked grads, zeroed pruned params
        pd = np.where(keep, p, 0.0).astype(np.float32)
        gd = np.where(keep, g, 0.0).astype(np.float32)
        md, vd = np.zeros(n, np.float32), np.zeros(n, np.float32)
        adam_kernel(pd, gd, md, vd, step=1, lr=lr, beta1=0.9, beta2=0.999,
                    eps=1e-8, weight_decay=0.0, decoupled=False)

        # compressed path
        pc = p[ind].copy()
        gc = g[ind].copy()
        mc, vc = np.zeros(ind.size, np.float32), np.zeros(ind.size, np.float32)
        adam_kernel(pc, gc, mc, vc, step=1, lr=lr, beta1=0.9, beta2=0.999,
                    eps=1e-8, weight_decay=0.0, decoupled=False)
        assert np.array_equal(pc, pd[ind])
        assert np.all(pd[~keep] == 0.0)


class TestSGDKernel:
    def test_plain_sgd(self):
        p = np.ones(4, np.float32)
        sgd_momentum_kernel(p, np.ones(4, np.float32), np.zeros(4, np.float32),
                            lr=0.1, momentum=0.0, weight_decay=0.0,
                            nesterov=False, first_step=True)
        assert np.allclose(p, 0.9)

    def test_momentum_accumulates(self):
        p = np.zeros(1, np.float32)
        buf = np.zeros(1, np.float32)
        g = np.ones(1, np.float32)
        sgd_momentum_kernel(p, g, buf, lr=1.0, momentum=0.9, weight_decay=0.0,
                            nesterov=False, first_step=True)
        assert p[0] == pytest.approx(-1.0)
        sgd_momentum_kernel(p, g, buf, lr=1.0, momentum=0.9, weight_decay=0.0,
                            nesterov=False, first_step=False)
        assert p[0] == pytest.approx(-1.0 - 1.9)

    def test_nesterov_differs(self):
        p1, p2 = np.zeros(1, np.float32), np.zeros(1, np.float32)
        b1, b2 = np.zeros(1, np.float32), np.zeros(1, np.float32)
        g = np.ones(1, np.float32)
        for first in (True, False):
            sgd_momentum_kernel(p1, g, b1, lr=0.1, momentum=0.9, weight_decay=0.0,
                                nesterov=False, first_step=first)
            sgd_momentum_kernel(p2, g, b2, lr=0.1, momentum=0.9, weight_decay=0.0,
                                nesterov=True, first_step=first)
        assert p1[0] != p2[0]


class TestOptimizerClasses:
    @pytest.mark.parametrize("opt_cls,kw", [
        (Adam, {}), (AdamW, {}), (SGD, {"momentum": 0.9}),
    ])
    def test_minimises_quadratic(self, opt_cls, kw):
        p, target = quad_problem()
        opt = opt_cls([p], lr=0.05, **kw)
        for _ in range(300):
            p.grad = 2 * (p.data - target)
            opt.step()
            p.grad = None
        assert np.allclose(p.data, target, atol=0.02)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        p, _ = quad_problem()
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)

    def test_nesterov_without_momentum_rejected(self):
        p, _ = quad_problem()
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=0.0, nesterov=True)

    def test_state_bytes(self):
        p = Parameter(np.zeros(100, np.float32))
        assert Adam([p], lr=0.1).state_bytes() == 800  # two fp32 moments
        assert SGD([p], lr=0.1, momentum=0.9).state_bytes() == 400
        assert SGD([p], lr=0.1, momentum=0.0).state_bytes() == 0

    def test_none_grads_skipped(self):
        p, _ = quad_problem()
        before = p.data.copy()
        Adam([p], lr=0.1).step()
        assert np.array_equal(p.data, before)

    def test_set_lr(self):
        p, _ = quad_problem()
        opt = Adam([p], lr=0.1)
        opt.set_lr(0.5)
        assert opt.lr == 0.5


class TestSchedules:
    def test_warmup_cosine_shape(self):
        s = WarmupCosine(peak_lr=1.0, warmup_steps=10, total_steps=110, min_lr=0.1)
        assert s(0) == pytest.approx(0.1, abs=0.01)  # ramping from ~0
        assert s(9) == pytest.approx(1.0)
        assert s(60) == pytest.approx(0.55, abs=0.01)  # cosine midpoint
        assert s(110) == 0.1
        assert s(1000) == 0.1

    def test_warmup_cosine_monotone_decay(self):
        s = WarmupCosine(1.0, 5, 50)
        vals = [s(i) for i in range(5, 50)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_warmup_cosine_validation(self):
        with pytest.raises(ValueError):
            WarmupCosine(1.0, 10, 5)

    def test_step_decay(self):
        s = StepDecay(1.0, milestones=[10, 20], gamma=0.1)
        assert s(5) == 1.0 and s(15) == pytest.approx(0.1) and s(25) == pytest.approx(0.01)

    def test_constant(self):
        assert Constant(0.3)(12345) == 0.3


class TestClipping:
    def test_norm_computation(self):
        p = Parameter(np.zeros(4, np.float32))
        p.grad = np.full(4, 2.0, np.float32)
        assert global_grad_norm([p]) == pytest.approx(4.0)

    def test_clip_scales_down(self):
        p = Parameter(np.zeros(4, np.float32))
        p.grad = np.full(4, 2.0, np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(4.0)
        assert global_grad_norm([p]) == pytest.approx(1.0)

    def test_clip_noop_under_threshold(self):
        p = Parameter(np.zeros(4, np.float32))
        p.grad = np.full(4, 0.1, np.float32)
        clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)

    def test_none_grads_ignored(self):
        p = Parameter(np.zeros(4, np.float32))
        assert global_grad_norm([p]) == 0.0
