"""MaskSet invariants and pruning algorithms (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import GPT, GPT_CONFIGS, build_vgg
from repro.pruning import (
    EarlyBirdPruner,
    IterativePruner,
    MaskSet,
    magnitude_prune,
    prunable_parameters,
    random_mask_for_shapes,
    random_prune,
    rounds_for_sparsity,
)
from repro.tensor import Linear, Sequential, Tensor


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(16, 32, rng=rng), Linear(32, 8, rng=rng))


class TestMaskSet:
    def test_indices_sorted_unique_int32(self, rng):
        m = random_prune(small_model(), 0.7, rng)
        for name, idx in m.indices.items():
            assert idx.dtype == np.int32
            assert np.all(np.diff(idx) > 0)

    def test_sparsity_accounting(self, rng):
        m = random_prune(small_model(), 0.9, rng)
        assert m.sparsity == pytest.approx(0.9, abs=0.01)
        assert m.total_kept() + round(0.9 * m.total_size()) == pytest.approx(m.total_size(), abs=2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MaskSet({"w": np.array([0, 100])}, {"w": (4, 4)})

    def test_missing_shape_rejected(self):
        with pytest.raises(KeyError):
            MaskSet({"w": np.array([0])}, {})

    def test_bool_mask_roundtrip(self, rng):
        m = random_prune(small_model(), 0.5, rng)
        for name in m:
            bm = m.bool_mask(name)
            rebuilt = MaskSet.from_bool_masks({name: bm})
            assert np.array_equal(rebuilt.indices[name], m.indices[name])

    def test_apply_zeroes_pruned(self, rng):
        net = small_model()
        m = random_prune(net, 0.8, rng)
        m.apply(net)
        for name, p in prunable_parameters(net).items():
            keep = m.bool_mask(name)
            assert np.all(p.data[~keep] == 0.0)

    def test_mask_gradients(self, rng):
        net = small_model()
        m = random_prune(net, 0.8, rng)
        x = Tensor(rng.normal(size=(4, 16)).astype(np.float32))
        net(x).sum().backward()
        m.mask_gradients(net)
        for name, p in prunable_parameters(net).items():
            keep = m.bool_mask(name)
            assert np.all(p.grad[~keep] == 0.0)

    def test_distance_self_zero_disjoint_one(self):
        shapes = {"w": (10,)}
        a = MaskSet({"w": np.arange(5)}, shapes)
        b = MaskSet({"w": np.arange(5, 10)}, shapes)
        assert a.distance(a) == 0.0
        assert a.distance(b) == 1.0

    def test_distance_symmetric(self, rng):
        net = small_model()
        a = random_prune(net, 0.5, np.random.default_rng(0))
        b = random_prune(net, 0.5, np.random.default_rng(1))
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_intersect(self):
        shapes = {"w": (10,)}
        a = MaskSet({"w": np.arange(6)}, shapes)
        b = MaskSet({"w": np.arange(3, 10)}, shapes)
        c = a.intersect(b)
        assert np.array_equal(c.indices["w"], np.arange(3, 6))

    def test_distance_mismatched_layers_raises(self):
        a = MaskSet({"w": np.array([0])}, {"w": (4,)})
        b = MaskSet({"v": np.array([0])}, {"v": (4,)})
        with pytest.raises(ValueError):
            a.distance(b)

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=4, max_value=200),
        sparsity=st.floats(min_value=0.0, max_value=0.95),
    )
    def test_property_random_mask_sparsity(self, size, sparsity):
        """Per-layer kept count is exact to one element (invariant 7)."""
        m = random_mask_for_shapes({"w": (size,)}, sparsity, np.random.default_rng(0))
        expected_keep = size - round(sparsity * size)
        assert m.total_kept() == expected_keep

    @settings(max_examples=25, deadline=None)
    @given(sparsity=st.floats(min_value=0.05, max_value=0.95))
    def test_property_global_magnitude_exact_count(self, sparsity):
        net = small_model(seed=42)
        m = magnitude_prune(net, sparsity)
        total = m.total_size()
        assert m.total_kept() == total - round(sparsity * total)


class TestMagnitude:
    def test_keeps_largest(self):
        net = Sequential(Linear(4, 4))
        w = net[0].weight
        w.data[...] = np.arange(16, dtype=np.float32).reshape(4, 4)
        m = magnitude_prune(net, 0.5)
        kept = m.indices["0.weight"]
        assert np.all(kept >= 8)  # the 8 largest magnitudes

    def test_layer_scope_uniform_sparsity(self):
        net = small_model()
        # make first layer huge values, second tiny — layer scope must still
        # prune each to the target
        net[0].weight.data[...] *= 100
        m = magnitude_prune(net, 0.6, scope="layer")
        assert m.layer_sparsity("0.weight") == pytest.approx(0.6, abs=0.01)
        assert m.layer_sparsity("1.weight") == pytest.approx(0.6, abs=0.01)

    def test_global_scope_can_be_nonuniform(self):
        net = small_model()
        net[0].weight.data[...] = 10.0
        net[1].weight.data[...] = 0.01
        m = magnitude_prune(net, 0.3)
        assert m.layer_sparsity("0.weight") < 0.05
        assert m.layer_sparsity("1.weight") > 0.5

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            magnitude_prune(small_model(), 1.0)

    def test_ties_resolved_exactly(self):
        """All-equal weights: threshold ties must still give exact counts."""
        net = Sequential(Linear(8, 8, rng=np.random.default_rng(0)))
        net[0].weight.data[...] = 1.0
        m = magnitude_prune(net, 0.5)
        assert m.total_kept() == 32


class TestEarlyBird:
    def test_converges_on_static_model(self):
        """If weights stop changing, masks coincide and EB must trigger."""
        net = small_model()
        eb = EarlyBirdPruner(sparsity=0.8, epsilon=0.1, window=3)
        for _ in range(3):
            eb.observe(net)
        assert eb.converged
        assert eb.ticket.sparsity == pytest.approx(0.8, abs=0.01)

    def test_does_not_converge_while_mask_churns(self, rng):
        net = small_model()
        eb = EarlyBirdPruner(sparsity=0.8, epsilon=0.01, window=3)
        for _ in range(4):
            # randomise weights each epoch -> masks keep changing
            for p in net.parameters():
                p.data[...] = rng.normal(size=p.data.shape).astype(np.float32)
            eb.observe(net)
        assert not eb.converged

    def test_distance_history_recorded(self):
        net = small_model()
        eb = EarlyBirdPruner(sparsity=0.5, window=2)
        eb.observe(net)
        eb.observe(net)
        assert len(eb.distance_history) == 1 and eb.distance_history[0] == 0.0

    def test_ticket_before_observe_raises(self):
        with pytest.raises(RuntimeError):
            EarlyBirdPruner().ticket

    def test_on_real_training(self):
        """EB finds a stable ticket on a tiny GPT within a few epochs."""
        from repro.core import SAMOConfig
        from repro.train import CharCorpus, Trainer

        cfg = GPT_CONFIGS["gpt3-tiny"]
        model = GPT(cfg, seed=0)
        corpus = CharCorpus(vocab_size=cfg.vocab_size, length=5000, seed=0)
        trainer = Trainer(model, mode="dense", config=SAMOConfig(optimizer="adamw", lr=3e-3))
        eb = EarlyBirdPruner(sparsity=0.9, epsilon=0.15, window=2)
        rng = np.random.default_rng(0)
        for _ in range(4):
            for _ in range(3):
                x, y = corpus.sample_batch(4, 32, rng)
                trainer.step(x, y)
            eb.observe(model)
            if eb.converged:
                break
        assert eb.epochs_observed >= 2
        assert eb.ticket.sparsity == pytest.approx(0.9, abs=0.01)


class TestIterative:
    def test_rounds_for_sparsity(self):
        assert rounds_for_sparsity(0.9, 0.2) == 11  # 0.8^11 ~ 0.086
        assert rounds_for_sparsity(0.2, 0.2) == 1

    def test_reaches_target(self):
        net = small_model()
        pruner = IterativePruner(net, target_sparsity=0.5, per_round=0.3)
        while not pruner.done:
            pruner.prune_round()
        assert pruner.mask.sparsity == pytest.approx(0.5, abs=0.02)

    def test_rewind_restores_survivors(self):
        net = small_model()
        init = {n: p.data.copy() for n, p in net.named_parameters()}
        pruner = IterativePruner(net, target_sparsity=0.3, per_round=0.3)
        for p in net.parameters():
            p.data += 1.0  # "train"
        mask = pruner.prune_round()
        for name, p in prunable_parameters(net).items():
            keep = mask.bool_mask(name)
            assert np.allclose(p.data[keep], init[name][keep])
            assert np.all(p.data[~keep] == 0.0)

    def test_masks_nested(self):
        """Each round's kept set is a subset of the previous round's."""
        net = small_model()
        pruner = IterativePruner(net, target_sparsity=0.6, per_round=0.25, rewind=False)
        prev = pruner.mask
        while not pruner.done:
            cur = pruner.prune_round()
            inter = cur.intersect(prev)
            assert inter.total_kept() == cur.total_kept()
            prev = cur

    def test_run_driver(self):
        net = small_model()
        calls = []
        pruner = IterativePruner(net, target_sparsity=0.4, per_round=0.4)
        pruner.run(lambda m: calls.append(1))
        assert pruner.done and len(calls) == pruner.round
