"""Observability: tracer/metrics/export correctness and no-op parity.

The contract under test, in order of importance:

1. **Disabled is invisible** — with the default null tracer installed,
   every result (breakdowns, traces, overlap reports) is byte-identical
   to an enabled run's results; the goldens in ``test_api_golden.py``
   pin the absolute numbers, here we pin enabled == disabled directly.
2. **Spans are deterministic** — two identical runs under fresh tracers
   produce equal span sequences (the event loop's tie-breaking is
   deterministic, and span emission follows it).
3. **The Chrome export is structurally valid** — every ``B`` has a
   matching ``E`` on its track, timestamps are monotone per track, and
   the validator actually rejects broken documents.
4. **Counters reconcile** — cache hits + misses == candidates, and
   estimator calls == misses, exactly, for a known planner run.
"""

import json

import pytest

from repro.api import Job, Machine, Session
from repro.autotune import EvaluationCache
from repro.cluster.events import EventLoop, SerialResource
from repro.models import get_spec
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    OBS,
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace_events,
    disable,
    enable,
    observed,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.parallel import simulate_batch, simulate_pipeline
from repro.parallel.scenarios import overlap_exposed_collective


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts and ends with the no-op defaults installed."""
    disable()
    yield
    disable()


# ---------------------------------------------------------------------------
# 1. disabled observability is invisible
# ---------------------------------------------------------------------------

class TestNoOpParity:
    def test_defaults_are_null(self):
        assert OBS.tracer is NULL_TRACER
        assert OBS.metrics is NULL_REGISTRY
        assert not OBS.enabled

    def test_breakdown_identical_enabled_vs_disabled(self):
        spec = get_spec("gpt3-2.7b")
        baseline = simulate_batch(spec, 128, "axonn", sparsity=0.9)
        with observed(tracer=Tracer(), metrics=MetricsRegistry()):
            traced = simulate_batch(spec, 128, "axonn", sparsity=0.9)
        assert traced.to_dict() == baseline.to_dict()

    def test_overlap_run_identical_enabled_vs_disabled(self):
        spec = get_spec("gpt3-2.7b")
        baseline = simulate_batch(
            spec, 128, "axonn", scenario="degraded-ring", overlap=True
        )
        with observed(tracer=Tracer(), metrics=MetricsRegistry()):
            traced = simulate_batch(
                spec, 128, "axonn", scenario="degraded-ring", overlap=True
            )
        assert traced.total == baseline.total
        assert traced.collective == baseline.collective
        assert traced.collective_hidden == baseline.collective_hidden

    def test_pipeline_trace_identical_enabled_vs_disabled(self):
        kwargs = dict(
            g_inter=4, n_microbatches=6, t_f_stage=1.0, t_b_stage=2.0,
            msg_time=0.25, link_contention=True,
        )
        base = simulate_pipeline(**kwargs)
        with observed(tracer=Tracer()):
            traced = simulate_pipeline(**kwargs)
        assert traced.makespan == base.makespan
        assert traced.tasks == base.tasks
        assert traced.link_windows == base.link_windows

    def test_null_tracer_span_context_is_reusable(self):
        with NULL_TRACER.span("anything") as s:
            assert s is None
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.group("pipeline") == "pipeline"

    def test_null_registry_hands_out_shared_noop(self):
        c = NULL_REGISTRY.counter("x")
        h = NULL_REGISTRY.histogram("y", {"k": "v"})
        c.inc(5)
        h.observe(1.0)
        assert c is h  # one shared instrument
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_prometheus() == ""


# ---------------------------------------------------------------------------
# 2. span determinism and structure
# ---------------------------------------------------------------------------

def _traced_pipeline_spans():
    tracer = Tracer()
    with observed(tracer=tracer):
        simulate_pipeline(
            g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0,
            msg_time=[0.5, 0.25],
        )
    return tracer.spans


class TestSpanDeterminism:
    def test_identical_runs_produce_equal_span_sequences(self):
        assert _traced_pipeline_spans() == _traced_pipeline_spans()

    def test_tie_broken_events_keep_insertion_order(self):
        # Two zero-delay events at the same timestamp: seq attrs must
        # reflect insertion order in the recorded spans.
        order = []
        tracer = Tracer()
        with observed(tracer=tracer):
            loop = EventLoop()
            loop.schedule(0.0, lambda: order.append("a"))
            loop.schedule(0.0, lambda: order.append("b"))
            loop.run()
        assert order == ["a", "b"]
        seqs = [dict(s.attrs)["seq"] for s in tracer.spans]
        assert seqs == sorted(seqs)

    def test_stage_link_and_ring_tracks_are_distinct(self):
        tracer = Tracer()
        with observed(tracer=tracer):
            trace = simulate_pipeline(
                g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0,
                msg_time=0.3,
            )
            overlap_exposed_collective(trace, comm_time=2.0, n_buckets=4)
        tracks = tracer.tracks()
        assert any(t.startswith("pipeline#0/stage") for t in tracks)
        assert any(t.startswith("pipeline#0/link") for t in tracks)
        assert any(t.startswith("allreduce#0/ring") for t in tracks)

    def test_group_numbers_repeated_runs(self):
        tracer = Tracer()
        assert tracer.group("pipeline") == "pipeline#0"
        assert tracer.group("pipeline") == "pipeline#1"
        assert tracer.group("allreduce") == "allreduce#0"

    def test_hidden_plus_exposed_covers_every_bucket(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        n_buckets = 6
        with observed(tracer=tracer, metrics=registry):
            trace = simulate_pipeline(
                g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0
            )
            overlap_exposed_collective(trace, comm_time=3.0, n_buckets=n_buckets)
        cats = tracer.by_category()
        hidden = cats.get("allreduce.hidden", 0)
        exposed = cats.get("allreduce.exposed", 0)
        assert hidden + exposed == trace.g_inter * n_buckets
        snap = registry.snapshot()
        assert snap["overlap.buckets.hidden"] == hidden
        assert snap["overlap.buckets.exposed"] == exposed

    def test_span_validation(self):
        with pytest.raises(ValueError, match="unknown clock"):
            Span("x", "", "t", 0.0, 1.0, clock="lunar")
        with pytest.raises(ValueError, match="ends before it starts"):
            Span("x", "", "t", 2.0, 1.0)
        s = Span("x", "c", "t", 1.0, 3.5)
        assert s.duration == 2.5

    def test_wall_clock_span_context(self):
        tracer = Tracer()
        with tracer.span("op", category="session", answer=42):
            pass
        (s,) = tracer.spans
        assert s.clock == "wall"
        assert s.end >= s.start
        assert dict(s.attrs) == {"answer": 42}


# ---------------------------------------------------------------------------
# 3. Chrome export validity
# ---------------------------------------------------------------------------

class TestChromeExport:
    def test_export_of_real_run_is_valid(self, tmp_path):
        spans = _traced_pipeline_spans()
        out = tmp_path / "trace.json"
        summary = write_chrome_trace(out, spans)
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert summary["events"] > 0
        # stages and links render as separately named tracks
        assert any("stage" in t for t in summary["tracks"])
        assert any("link" in t for t in summary["tracks"])

    def test_every_b_has_an_e_and_monotone_ts(self):
        events = chrome_trace_events(_traced_pipeline_spans())
        per_track_depth: dict = {}
        per_track_last: dict = {}
        for ev in events:
            if ev["ph"] == "M":
                continue
            key = (ev["pid"], ev["tid"])
            assert ev["ts"] >= per_track_last.get(key, 0.0)
            per_track_last[key] = ev["ts"]
            depth = per_track_depth.get(key, 0) + (1 if ev["ph"] == "B" else -1)
            assert depth >= 0
            per_track_depth[key] = depth
        assert all(d == 0 for d in per_track_depth.values())

    def test_wall_and_virtual_spans_land_in_separate_processes(self):
        spans = [
            Span("v", "", "t", 0.0, 1.0, clock="virtual"),
            Span("w", "", "t", 0.0, 1.0, clock="wall"),
        ]
        pids = {e["pid"] for e in chrome_trace_events(spans) if e["ph"] != "M"}
        assert pids == {1, 2}

    def test_partial_overlap_spills_to_extra_lane(self):
        spans = [
            Span("a", "", "t", 0.0, 2.0),
            Span("b", "", "t", 1.0, 3.0),  # partial overlap: illegal as B/E nesting
        ]
        events = chrome_trace_events(spans)
        assert validate_chrome_trace(events) == []
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert lanes == {"t", "t (2)"}

    def test_validator_rejects_broken_documents(self):
        unclosed = [{"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        assert any("never closed" in e for e in validate_chrome_trace(unclosed))
        orphan = [{"ph": "E", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        assert any("no open B" in e for e in validate_chrome_trace(orphan))
        regressed = [
            {"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 5},
            {"ph": "E", "name": "x", "pid": 1, "tid": 1, "ts": 2},
        ]
        assert any("regressed" in e for e in validate_chrome_trace(regressed))
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert any("no B/E" in e for e in validate_chrome_trace([]))

    def test_session_trace_to_writes_valid_chrome_file(self, tmp_path):
        out = tmp_path / "session.json"
        session = Session(
            Machine(), cache=EvaluationCache(), trace_to=str(out)
        )
        session.breakdown(
            Job(model="gpt3-2.7b", n_gpus=128, overlap=True),
            scenario="degraded-ring",
        )
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # the acceptance artifact: stages, links, and allreduce buckets
        # render as distinct tracks
        assert any("stage" in n for n in names)
        assert any("link" in n for n in names)
        assert any("ring" in n for n in names)


# ---------------------------------------------------------------------------
# 4. metrics correctness
# ---------------------------------------------------------------------------

class TestMetricsReconciliation:
    def test_cache_counters_reconcile_with_evaluations(self):
        session = Session(Machine(), cache=EvaluationCache())
        job = Job(model="gpt3-xl", n_gpus=64)
        res = session.plan(job)
        snap = session.metrics()
        n = res.stats.candidates
        assert snap["planner.candidates"] == n
        assert snap["planner.cache.hits"] + snap["planner.cache.misses"] == n
        assert snap["planner.cache.misses"] == res.stats.evaluated
        assert snap['estimator.calls{fidelity="analytic"}'] == res.stats.evaluated
        lat = snap['estimator.evaluate_seconds{fidelity="analytic"}']
        assert lat["count"] == res.stats.evaluated

        # replanning the identical job: all hits, zero new estimator calls
        session.plan(job)
        snap = session.metrics()
        assert snap["planner.candidates"] == 2 * n
        assert snap["planner.cache.hits"] + snap["planner.cache.misses"] == 2 * n
        assert snap['estimator.calls{fidelity="analytic"}'] == snap["planner.cache.misses"]

    def test_plan_result_stats_block_in_json(self):
        session = Session(Machine(), cache=EvaluationCache())
        doc = session.plan(Job(model="gpt3-xl", n_gpus=64)).to_dict()
        assert doc["stats"]["candidates"] == doc["stats"]["evaluated"] + doc["stats"]["cache_hits"]
        assert doc["stats"]["wall_seconds"] >= 0

    def test_robust_plan_stats_block(self):
        session = Session(Machine(), cache=EvaluationCache())
        res = session.robust_plan(Job(model="gpt3-xl", n_gpus=64), "neutral")
        assert res.stats["scenarios"] == 1
        assert res.stats["candidates"] == res.stats["evaluated"] + res.stats["cache_hits"]
        assert res.to_dict()["stats"] == res.stats

    def test_session_op_accounting(self):
        session = Session(Machine(), cache=EvaluationCache())
        session.breakdown(Job(model="gpt3-2.7b", n_gpus=128))
        session.breakdown(Job(model="gpt3-2.7b", n_gpus=128))
        snap = session.metrics()
        assert snap['session.ops{op="breakdown"}'] == 2
        assert snap['session.op_seconds{op="breakdown"}']["count"] == 2
        assert "events.processed" not in snap  # analytic path runs no engine

    def test_registry_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_histogram_percentiles_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == 51.0  # nearest-rank on 100 samples
        snap = h.snapshot()
        assert snap["count"] == 100 and snap["min"] == 1.0 and snap["max"] == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"cache": "eval"}).inc(3)
        reg.histogram("lat").observe(0.5)
        text = reg.render_prometheus()
        assert 'hits{cache="eval"} 3' in text
        assert "lat_count 1" in text
        assert 'lat{quantile="50"} 0.5' in text

    def test_prometheus_label_values_escaped(self):
        # Prometheus text format: label values must escape backslash,
        # double-quote, and newline. Pin the exact exposition bytes.
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("line1\nline2") == "line1\\nline2"

        reg = MetricsRegistry()
        reg.counter("req", {"path": 'a"b\\c\nd'}).inc()
        text = reg.render_prometheus()
        assert 'req{path="a\\"b\\\\c\\nd"} 1' in text
        assert "\nd" not in text  # no raw newline leaks into the exposition
        # escaped and raw-identical values land on the same series
        reg.counter("req", {"path": 'a"b\\c\nd'}).inc()
        assert 'req{path="a\\"b\\\\c\\nd"} 2' in reg.render_prometheus()

    def test_enable_disable_process_wide(self):
        tracer, metrics = enable()
        try:
            assert OBS.enabled and OBS.tracer is tracer and OBS.metrics is metrics
            simulate_pipeline(
                g_inter=2, n_microbatches=2, t_f_stage=1.0, t_b_stage=1.0
            )
            assert len(tracer) > 0
            assert metrics.snapshot()["events.processed"] > 0
        finally:
            disable()
        assert not OBS.enabled


# ---------------------------------------------------------------------------
# satellite regressions: event-loop accounting and recorded link windows
# ---------------------------------------------------------------------------

class TestEventLoopAccounting:
    def test_budget_error_reports_processed_count(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(0.0, reschedule)

        loop.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError) as err:
            loop.run(max_events=10)
        assert "after processing 11 events" in str(err.value)
        # the satellite fix: the count survives the raise instead of
        # reporting the pre-run value
        assert loop.events_processed == 11

    def test_events_processed_accumulates_across_runs(self):
        loop = EventLoop()
        loop.schedule(0.0, lambda: None)
        loop.run()
        loop.schedule(0.0, lambda: None)
        loop.schedule(0.1, lambda: None)
        loop.run()
        assert loop.events_processed == 3


class TestRecordedWindows:
    def test_acquire_and_book_record_labels(self):
        r = SerialResource("link", record=True)
        assert r.acquire(0.0, 2.0, "F0") == (0.0, 2.0)
        r.book(0.5, 1.5, "B0")  # full-duplex window: no queueing
        assert r.free_at == 2.0  # book did not move the FIFO clock
        assert r.windows == [(0.0, 2.0, "F0"), (0.5, 1.5, "B0")]
        r.acquire(0.0, 0.0, "zero")  # zero-duration: counted, not recorded
        assert len(r.windows) == 2
        with pytest.raises(ValueError, match="ends before"):
            r.book(2.0, 1.0)

    def test_unrecorded_resource_keeps_no_windows(self):
        r = SerialResource("link")
        r.acquire(0.0, 1.0, "x")
        r.book(0.0, 1.0, "y")
        assert r.windows is None

    def test_pipeline_trace_surfaces_link_windows(self):
        trace = simulate_pipeline(
            g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0,
            msg_time=0.25,
        )
        assert len(trace.link_windows) == 2
        # every forward except stage-last and every backward except
        # stage-first crosses a link exactly once
        for windows in trace.link_windows:
            assert len(windows) == 2 * trace.n_microbatches
            for start, end, label in windows:
                assert end == pytest.approx(start + 0.25)
                assert label[0] in ("F", "B")

    def test_contended_windows_match_busy_time(self):
        trace = simulate_pipeline(
            g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0,
            msg_time=0.6, link_contention=True,
        )
        for busy, windows in zip(trace.link_busy, trace.link_windows):
            assert sum(e - s for s, e, _ in windows) == pytest.approx(busy)
            # FIFO: recorded windows never overlap
            for (s0, e0, _), (s1, e1, _) in zip(windows, windows[1:]):
                assert s1 >= e0

    def test_ascii_links_rows(self):
        trace = simulate_pipeline(
            g_inter=3, n_microbatches=4, t_f_stage=1.0, t_b_stage=2.0,
            msg_time=0.5,
        )
        plain = trace.ascii(0.5)
        with_links = trace.ascii(0.5, links=True)
        assert plain in with_links  # links only append rows
        assert "LNK 0:" in with_links and "LNK 1:" in with_links
        assert "###" in with_links
