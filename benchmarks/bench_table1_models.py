"""Table I — neural networks, parameter counts, batch sizes, GPU ranges.

Regenerated from the model registry; parameter counts are computed from
the layer shapes (not hard-coded) and must match the paper's numbers.
"""

import pytest

from repro.models import TABLE_I, get_spec, table_rows
from repro.reporting import render_table

PAPER_PARAMS = {
    "wideresnet-101": 126.89e6,
    "vgg19": 143.67e6,
    "gpt3-xl": 1.3e9,
    "gpt3-2.7b": 2.7e9,
    "gpt3-6.7b": 6.7e9,
    "gpt3-13b": 13e9,
}


def test_table1(report):
    rows = table_rows()
    for r in rows:
        r["# Parameters"] = f"{r['# Parameters'] / 1e6:.2f}M"
    report("table1_models", render_table(rows, title="Table I: models and hyperparameters"))
    for name, expected in PAPER_PARAMS.items():
        assert get_spec(name).param_count == pytest.approx(expected, rel=0.03), name


def test_batch_to_gpu_ratios():
    """Batch/GPU ratio spans 8 (min GPUs) to 1 (max GPUs) for every model.

    The paper's prose says the minimum-GPU ratio is 4, but its own Table I
    numbers give batch/min_gpus = 8 for all six models (e.g. 512/64); we
    reproduce the table's numbers.
    """
    for name, entry in TABLE_I.items():
        assert entry.batch_size / entry.min_gpus == 8, name
        assert entry.batch_size / entry.max_gpus == 1, name


def test_bench_spec_construction(benchmark):
    benchmark(lambda: [get_spec(n).param_count for n in TABLE_I])
