"""Figure 2 — analytical memory savings of SAMO vs sparsity.

Regenerates the curve (break-even at p=0.25, 66-78% savings in the
0.8-0.9 region of interest) and benchmarks the measured byte accounting of
a real compressed model state against the closed form.
"""

import numpy as np

from repro.core import (
    BREAK_EVEN_SPARSITY,
    SAMOConfig,
    SAMOTrainingState,
    memory_savings_percent,
    samo_breakdown,
)
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import magnitude_prune
from repro.reporting import render_table, series_plot


def test_figure2_curve(report):
    ps = [i / 20 for i in range(21)]
    savings = [memory_savings_percent(p) for p in ps]
    rows = [
        {"sparsity": p, "memory savings (%)": round(s, 1)}
        for p, s in zip(ps, savings)
        if p in (0.0, 0.25, 0.5, 0.8, 0.85, 0.9, 1.0)
    ]
    table = render_table(rows, title="Figure 2: SAMO memory savings vs sparsity")
    plot = series_plot({"savings_%": savings}, ps, title="Figure 2 curve")
    roi = f"region of interest p in [0.8, 0.9]: {memory_savings_percent(0.8):.0f}%..{memory_savings_percent(0.9):.0f}% (paper: 66-78%)"
    be = f"break-even sparsity: {BREAK_EVEN_SPARSITY} (savings there: {memory_savings_percent(0.25):.2f}%)"
    report("fig2_memory_model", table + "\n\n" + plot + "\n\n" + roi + "\n" + be)
    assert round(memory_savings_percent(0.8)) == 66
    assert round(memory_savings_percent(0.9)) == 78


def test_bench_measured_accounting(benchmark, report):
    """Build a real SAMO state on a tiny GPT and reconcile measured bytes
    with the Eq. 1-5 breakdown."""
    cfg = GPT_CONFIGS["gpt3-tiny"]

    def build():
        model = GPT(cfg, seed=0)
        mask = magnitude_prune(model, 0.9)
        return SAMOTrainingState(model, mask, SAMOConfig(optimizer="adam"))

    state = benchmark(build)
    measured = state.measured_bytes()
    phi_p = sum(int(np.prod(e.shape)) for e in state.compressed)
    nnz = sum(e.nnz for e in state.compressed)
    analytic = samo_breakdown(phi_p, 1 - nnz / phi_p).as_dict()
    rows = [
        {"component": k, "measured (B)": measured.get(k, 0), "analytic prunable-only (B)": analytic.get(k, 0)}
        for k in ("theta16", "grad16", "theta32", "grad32", "optimizer_states", "index", "downcast_temp")
    ]
    report("fig2_measured_accounting", render_table(rows, title="Measured vs analytic SAMO bytes (tiny GPT, p=0.9)"))
