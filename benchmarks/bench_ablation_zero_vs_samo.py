"""Ablation: SAMO vs ZeRO — two answers to the same 20φ problem.

DeepSpeed's ZeRO divides the replicated model state by the data-parallel
group size; SAMO multiplies every term except θ16 by the kept fraction
``(1-p)``. They attack different axes (parallel width vs parameter
sparsity), so their regimes differ:

* ZeRO-1 keeps 4φ unsharded (θ16 + ∇θ16): at p = 0.9 SAMO's ~4.4φ_p + 2φ
  beats it at *any* group size;
* ZeRO-3 shards everything: beyond ~N = 5 data-parallel ranks its 20φ/N
  undercuts SAMO — but every forward now pays an all-gather of θ16,
  which is exactly the communication SAMO's design avoids;
* they compose: nothing stops a ZeRO-style shard of SAMO's *compressed*
  optimizer partition.

This bench tabulates per-GPU model-state bytes across the regimes and
the consequence the paper actually cares about: the feasible ``G_inter``
each mode buys on 16 GB V100s (Section IV-B).
"""

import pytest

from repro.core import samo_model_state_bytes
from repro.models import get_spec
from repro.parallel import StorageMode, choose_g_inter, zero_memory_bytes
from repro.reporting import format_bytes, render_table

SPARSITY = 0.9


def _samo_bytes(spec) -> int:
    from repro.core import dense_model_state_bytes

    return samo_model_state_bytes(spec.prunable_count, SPARSITY) + dense_model_state_bytes(
        spec.param_count - spec.prunable_count
    )


def test_ablation_zero_vs_samo_bytes(report):
    spec = get_spec("gpt3-2.7b")
    phi = spec.param_count
    samo = _samo_bytes(spec)
    rows = []
    crossover_n = None
    for n in (1, 2, 4, 8, 16, 64, 256):
        z1 = zero_memory_bytes(phi, n, stage=1)
        z3 = zero_memory_bytes(phi, n, stage=3)
        if crossover_n is None and z3 < samo:
            crossover_n = n
        rows.append({
            "G_data": n,
            "dense": format_bytes(20 * phi),
            "ZeRO-1": format_bytes(z1),
            "ZeRO-3": format_bytes(z3),
            "SAMO (p=0.9)": format_bytes(samo),
            "winner": "SAMO" if samo <= min(z1, z3) else "ZeRO-3",
        })
    report(
        "ablation_zero_vs_samo",
        render_table(rows, title="Model-state bytes per replica/GPU: ZeRO vs SAMO (GPT-3 2.7B)"),
    )
    # At deployable data-parallel widths SAMO beats ZeRO-1 outright; only
    # in the N -> inf limit does ZeRO-1's 4φ floor slip (just) below
    # SAMO's ~4.4φ, and by then ZeRO has spent the communication SAMO
    # saves.
    for n in (1, 4, 16):
        assert samo < zero_memory_bytes(phi, n, stage=1)
    assert zero_memory_bytes(phi, 10**6, stage=1) == pytest.approx(4 * phi, rel=0.01)
    # ZeRO-3 crosses below SAMO at moderate width (20/N < ~4.4 -> N >= 8
    # given 2.7B's non-prunable fraction) — but pays per-forward gathers.
    assert crossover_n is not None and 4 <= crossover_n <= 16


def test_ablation_zero_vs_samo_composition(report):
    """Sharding SAMO's compressed optimizer partition composes the wins."""
    spec = get_spec("gpt3-2.7b")
    phi_p = spec.prunable_count
    f = 1.0 - SPARSITY
    nnz = round(f * phi_p)
    rows = []
    for n in (1, 4, 16):
        # SAMO keeps θ16 (2φ_p) + ∇θ16 (2fφ_p) resident; the fp32 masters,
        # moments and index (20fφ_p + downcast temp 2fφ_p) shard over n.
        resident = 2 * phi_p + 2 * nnz
        sharded = (4 + 4 + 8 + 4 + 2) * nnz // n
        rows.append({
            "G_data": n,
            "SAMO": format_bytes(samo_model_state_bytes(phi_p, SPARSITY)),
            "SAMO + ZeRO-1-style shard": format_bytes(resident + sharded),
        })
    report(
        "ablation_zero_samo_composed",
        render_table(rows, title="Composing SAMO with optimizer-shard (prunable params only)"),
    )
    base = samo_model_state_bytes(phi_p, SPARSITY)
    composed_16 = 2 * phi_p + 2 * nnz + (22 * nnz) // 16
    assert composed_16 < base


def test_ablation_g_inter_consequence(report):
    """The paper's real currency: smaller state -> smaller G_inter."""
    spec = get_spec("gpt3-2.7b")
    n_gpus = 512
    rows = []
    gs = {}
    for label, mode, kw in (
        ("AxoNN (dense)", StorageMode.DENSE, {}),
        ("DeepSpeed ZeRO-1", StorageMode.ZERO1, {}),
        ("AxoNN+SAMO", StorageMode.SAMO, {"sparsity": SPARSITY}),
    ):
        g = choose_g_inter(spec, n_gpus, mode, **kw)
        gs[label] = g
        rows.append({
            "framework": label,
            "G_inter": g,
            "G_data": n_gpus // g,
        })
    report(
        "ablation_g_inter_by_mode",
        render_table(rows, title=f"Feasible G_inter on {n_gpus} x 16 GB V100s (GPT-3 2.7B)"),
    )
    assert gs["AxoNN+SAMO"] < gs["AxoNN (dense)"]
    assert gs["DeepSpeed ZeRO-1"] <= gs["AxoNN (dense)"]
    assert gs["AxoNN+SAMO"] <= gs["DeepSpeed ZeRO-1"]
