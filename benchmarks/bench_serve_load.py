"""Load test for the planning server: cold vs warm, herd coalescing.

Hammers one :class:`~repro.serve.PlanningServer` (the transport-agnostic
``handle`` entry point, exactly what stdio/HTTP dispatch into) from N
worker threads with a mixed ``plan``/``robust_plan``/``place`` corpus
over the Fig. 6-8 search spaces, in two phases:

* **cold (thundering herd)** — every template submitted ``HERD`` times
  concurrently against an empty store. The duplicates must coalesce
  onto one in-flight evaluation per cache key: the sim-fidelity plan
  template pins ``sum(evaluated) == candidates`` across its copies, and
  the store's ``coalesced`` counter must move.
* **warm** — hundreds of mixed requests served entirely from the store
  (miss delta must be zero).

The report pins p50/p99 per template and overall, the warm hit-rate,
and the CI floor the ISSUE sets: **warm p50 at least 20x faster than
cold** on the space-pricing templates (``plan-sim``/``robust-sim`` — the
Fig. 6-8 searches the store exists to amortise; ``place`` re-runs its
swap sweeps per request and ``plan-analytic`` is microseconds-cheap
either way, so neither can clear an arbitrary cache-speedup floor).
Quick mode (default) keeps CI under ~30 s; set
``REPRO_BENCH_SERVE_FULL=1`` for the thousands-of-requests version.
"""

import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.reporting import render_table
from repro.serve import PersistentEvaluationStore, PlanningServer

#: (label, method, params) over the paper's spaces (Fig. 6-8 subjects)
TEMPLATES = (
    (
        "plan-sim",
        "plan",
        {"job": {"model": "gpt3-xl", "n_gpus": 16, "fidelity": "sim"}},
    ),
    ("plan-analytic", "plan", {"job": {"model": "gpt3-2.7b", "n_gpus": 64}}),
    (
        "robust-sim",
        "robust_plan",
        {
            "job": {"model": "gpt3-xl", "n_gpus": 16, "fidelity": "sim"},
            "scenarios": "collective-degraded",
        },
    ),
    (
        "place",
        "place",
        {"job": {"model": "gpt3-xl", "n_gpus": 16}, "swap_sweeps": 1},
    ),
)

#: the store-amortised space searches the 20x floor applies to
FLOOR_TEMPLATES = ("plan-sim", "robust-sim")

FULL = os.environ.get("REPRO_BENCH_SERVE_FULL", "") not in ("", "0")
N_THREADS = 8
HERD = 4  # concurrent copies of each template in the cold phase
WARM_REQUESTS = 2000 if FULL else 400
SPEEDUP_FLOOR = 20.0


def _pct(samples, q) -> float:
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _timed(server, label, method, params, rid, sink, lock):
    t0 = time.perf_counter()
    response = server.handle(
        {"jsonrpc": "2.0", "id": rid, "method": method, "params": params}
    )
    dt = time.perf_counter() - t0
    assert "error" not in response, response
    with lock:
        sink.setdefault(label, []).append(dt)
    return response


def test_serve_load(report):
    server = PlanningServer(store=PersistentEvaluationStore())
    lock = threading.Lock()

    # -- phase 1: cold, with a thundering herd per template ------------
    cold: dict[str, list[float]] = {}
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        futures = {
            pool.submit(
                _timed, server, label, method, params,
                f"cold-{label}-{copy}", cold, lock,
            ): label
            for label, method, params in TEMPLATES
            for copy in range(HERD)
        }
        responses = {}
        for f, label in futures.items():
            responses.setdefault(label, []).append(f.result())

    # the herd contract: the HERD copies of the sim plan priced the
    # candidate grid exactly once between them
    sim_stats = [r["result"]["stats"] for r in responses["plan-sim"]]
    assert sum(s["evaluated"] for s in sim_stats) == sim_stats[0]["candidates"]
    assert server.store.coalesced > 0

    # -- phase 2: warm, mixed round-robin traffic ----------------------
    misses_before = server.store.stats()["misses"]
    warm: dict[str, list[float]] = {}
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        results = [
            pool.submit(
                _timed, server, *TEMPLATES[i % len(TEMPLATES)],
                f"warm-{i}", warm, lock,
            )
            for i in range(WARM_REQUESTS)
        ]
        for f in results:
            f.result()

    stats = server.store.stats()
    assert stats["misses"] == misses_before, "warm phase must not miss"
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])

    # -- report --------------------------------------------------------
    cold_all = [dt for lat in cold.values() for dt in lat]
    warm_all = [dt for lat in warm.values() for dt in lat]
    rows = []
    floor_speedups = {}
    for label, _method, _params in TEMPLATES:
        speedup = _pct(cold[label], 50) / _pct(warm[label], 50)
        if label in FLOOR_TEMPLATES:
            floor_speedups[label] = speedup
        rows.append({
            "template": label,
            "cold reqs": len(cold[label]),
            "warm reqs": len(warm[label]),
            "cold p50 (ms)": round(_pct(cold[label], 50) * 1e3, 2),
            "cold p99 (ms)": round(_pct(cold[label], 99) * 1e3, 2),
            "warm p50 (ms)": round(_pct(warm[label], 50) * 1e3, 2),
            "warm p99 (ms)": round(_pct(warm[label], 99) * 1e3, 2),
            "p50 speedup": round(speedup, 1),
        })
    rows.append({
        "template": "OVERALL",
        "cold reqs": len(cold_all),
        "warm reqs": len(warm_all),
        "cold p50 (ms)": round(_pct(cold_all, 50) * 1e3, 2),
        "cold p99 (ms)": round(_pct(cold_all, 99) * 1e3, 2),
        "warm p50 (ms)": round(_pct(warm_all, 50) * 1e3, 2),
        "warm p99 (ms)": round(_pct(warm_all, 99) * 1e3, 2),
        "p50 speedup": round(_pct(cold_all, 50) / _pct(warm_all, 50), 1),
    })

    snap = server.session.metrics()
    summary = "\n".join([
        render_table(
            rows,
            title=(
                f"Planning server under load ({N_THREADS} threads, herd={HERD}, "
                f"{'full' if FULL else 'quick'} mode; floor {SPEEDUP_FLOOR:.0f}x "
                f"on {'/'.join(FLOOR_TEMPLATES)})"
            ),
        ),
        "",
        f"store: entries={stats['entries']} hit_rate={hit_rate:.3f} "
        f"coalesced={stats['coalesced']} dedup={stats['dedup']} "
        f"evictions={stats['evictions']}",
        f"metrics: serve.requests total="
        f"{sum(v for k, v in snap.items() if k.startswith('serve.requests'))} "
        f"serve.inflight_coalesced={snap.get('serve.inflight_coalesced', 0)} "
        f"estimator calls="
        f"{sum(v for k, v in snap.items() if k.startswith('estimator.calls'))}",
    ])
    for label, speedup in floor_speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"{label}: warm p50 only {speedup:.1f}x faster than cold "
            f"(floor {SPEEDUP_FLOOR:.0f}x)\n{summary}"
        )
    report("serve_load", summary)
