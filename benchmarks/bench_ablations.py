"""Ablations of SAMO's design choices (beyond the paper's figures).

Each ablation isolates one decision from Section III and quantifies what
it buys, using the same analytical/measured machinery as the main
experiments:

1. **Shared index tensor** — all compressed state tensors share one int32
   index; the naive alternative stores one per tensor.
2. **1-D flattened view** — indices address the flattened tensor; the
   COO alternative stores one coordinate per dimension (N× memory).
3. **Dense θ16** — SAMO trades 2·p·φ of possible savings for dense-kernel
   compute; the alternative (compress θ16 too, compute sparse) pays the
   Figure 1 kernel gap.
4. **Sparsity sweep** — end-to-end simulated speedup of AxoNN+SAMO over
   AxoNN as the pruning level varies (the paper fixes p=0.9).
5. **G_inter choice** — batch time of forced G_inter values around the
   memory-model choice, validating Eqs. 6-11's "smaller is better, if it
   fits".
"""

import numpy as np

from repro.cluster import SUMMIT
from repro.core import samo_breakdown
from repro.models import get_spec
from repro.parallel import StorageMode, choose_g_inter, memory_per_gpu, simulate_batch
from repro.parallel.axonn import _framework_traits
from repro.reporting import format_bytes, render_table
from repro.sparse import fc_layer_time


def test_ablation_shared_index(report):
    """One shared index vs per-tensor indices (5 compressed tensors)."""
    spec = get_spec("gpt3-2.7b")
    phi = spec.prunable_count
    p = 0.9
    nnz = round((1 - p) * phi)
    shared = samo_breakdown(phi, p).total
    # per-tensor: θ32, ∇θ16, ∇θ32, and two Adam moments each carry an index
    per_tensor = shared + 4 * 4 * nnz
    rows = [
        {"scheme": "shared index (SAMO)", "state bytes": format_bytes(shared)},
        {"scheme": "index per tensor", "state bytes": format_bytes(per_tensor)},
        {"scheme": "penalty", "state bytes": f"+{100 * (per_tensor / shared - 1):.1f}%"},
    ]
    report("ablation_shared_index", render_table(rows, title="Ablation 1: shared index tensor (2.7B, p=0.9)"))
    assert per_tensor > 1.1 * shared


def test_ablation_flat_indices(report):
    """Flattened 1-D indices vs N-d COO coordinates on conv weights."""
    spec = get_spec("wideresnet-101")
    nnz = round(0.1 * spec.prunable_count)
    flat = 4 * nnz  # one int32 per kept value
    coo_4d = 4 * 4 * nnz  # conv weights are 4-D: (O, I, kh, kw)
    rows = [
        {"scheme": "1-D flattened view (SAMO)", "index bytes": format_bytes(flat)},
        {"scheme": "4-D COO coordinates", "index bytes": format_bytes(coo_4d)},
    ]
    report("ablation_flat_indices", render_table(
        rows, title="Ablation 2: index flattening saves N x (WideResnet conv weights)"))
    assert coo_4d == 4 * flat


def test_ablation_dense_theta16(report):
    """Keep θ16 dense (SAMO) vs compress it and compute sparse."""
    spec = get_spec("gpt3-2.7b")
    phi = spec.prunable_count
    p = 0.9
    extra_memory = 2 * phi - 2 * round((1 - p) * phi)  # what compressing θ16 would save
    # compute penalty: Sputnik vs cuBLAS on a d_model-sized GEMM (Fig. 1 model)
    t_dense = fc_layer_time("cublas", 2048, 2560, p)
    t_sparse = fc_layer_time("sputnik", 2048, 2560, p)
    rows = [
        {"quantity": "additional memory if θ16 compressed", "value": format_bytes(extra_memory)},
        {"quantity": "as % of SAMO state", "value": f"{100 * extra_memory / samo_breakdown(phi, p).total:.0f}%"},
        {"quantity": "forward kernel time, dense θ16 (cuBLAS)", "value": f"{t_dense * 1e3:.2f} ms"},
        {"quantity": "forward kernel time, compressed θ16 (Sputnik)", "value": f"{t_sparse * 1e3:.2f} ms"},
        {"quantity": "compute penalty", "value": f"{t_sparse / t_dense:.1f}x"},
    ]
    report("ablation_dense_theta16", render_table(
        rows, title="Ablation 3: why θ16 stays dense (Sec. III-A trade-off)"))
    assert t_sparse / t_dense > 5  # the paper's core motivation


def test_ablation_sparsity_sweep(report):
    """Speedup of AxoNN+SAMO over AxoNN as sparsity varies (2.7B, 512 GPUs)."""
    spec = get_spec("gpt3-2.7b")
    rows = []
    speedups = []
    for p in (0.5, 0.6, 0.7, 0.8, 0.9, 0.95):
        a = simulate_batch(spec, 512, "axonn", sparsity=p)
        s = simulate_batch(spec, 512, "axonn+samo", sparsity=p)
        speedups.append(s.speedup_over(a))
        rows.append({
            "sparsity": p,
            "SAMO G_inter": s.config.g_inter,
            "SAMO total (s)": round(s.total, 2),
            "speedup (%)": round(speedups[-1], 1),
        })
    report("ablation_sparsity_sweep", render_table(
        rows, title="Ablation 4: SAMO speedup vs pruning level (2.7B @512 GPUs)"))
    # more pruning -> at least as small G_inter and at least comparable speedup
    assert speedups[-1] >= speedups[0]


def test_ablation_g_inter_choice(report):
    """Force G_inter around the memory model's choice; the chosen value
    should be the fastest *feasible* one (Eqs. 6-11: smaller G_inter is
    faster, memory permitting)."""
    import dataclasses

    spec = get_spec("gpt3-2.7b")
    chosen = choose_g_inter(spec, 512, StorageMode.SAMO, 0.9)
    rows = []
    totals = {}
    for gi in (1, 2, 4, 8, 16):
        mem = memory_per_gpu(spec, gi, StorageMode.SAMO, 0.9, g_data=512 // gi)
        feasible = mem <= SUMMIT.gpu_memory_bytes
        # simulate with a calibration whose memory ceiling admits gi
        cal = dataclasses.replace(SUMMIT, gpu_memory_bytes=max(mem + 1, SUMMIT.gpu_memory_bytes))
        b = simulate_batch(spec, 512, "axonn+samo", cal=cal) if gi == chosen else None
        # force by constructing directly through the engine with a custom ceiling
        if b is None or b.config.g_inter != gi:
            cal_forced = dataclasses.replace(SUMMIT, gpu_memory_bytes=mem + 1)
            b = simulate_batch(spec, 512, "axonn+samo", cal=cal_forced)
        totals[gi] = b.total if b.config.g_inter == gi else None
        rows.append({
            "G_inter": gi,
            "mem/GPU": format_bytes(mem),
            "fits 16GB": feasible,
            "total (s)": round(b.total, 3) if totals[gi] else "(not reproducible)",
            "chosen": "<-- memory model" if gi == chosen else "",
        })
    report("ablation_g_inter", render_table(
        rows, title="Ablation 5: forced G_inter vs the memory model's choice (SAMO, 2.7B @512)"))
    feasible_totals = {gi: t for gi, t in totals.items()
                       if t is not None and memory_per_gpu(spec, gi, StorageMode.SAMO, 0.9) <= SUMMIT.gpu_memory_bytes}
    assert chosen in feasible_totals
    assert feasible_totals[chosen] == min(feasible_totals.values())


def test_bench_ablation_sweep(benchmark):
    spec = get_spec("gpt3-2.7b")
    benchmark(lambda: [simulate_batch(spec, 512, "axonn+samo", sparsity=p).total
                       for p in (0.5, 0.7, 0.9)])
