"""Figure 4 — validation perplexity: AxoNN vs AxoNN+SAMO at 90% sparsity.

The paper trains GPT-3 XL on Wikitext-103 and GPT-3 2.7B on BookCorpus and
shows the pruned+SAMO run matches the dense run's final perplexity in a
similar number of iterations. We reproduce the protocol end-to-end at tiny
scale on the synthetic corpus: same init, Early-Bird ticket at p=0.9,
identical data order, perplexity curves for both systems.
"""

import numpy as np

from repro.core import SAMOConfig
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import EarlyBirdPruner
from repro.reporting import render_table, series_plot
from repro.train import CharCorpus, Trainer, evaluate_perplexity

N_ITERS = 60
EVAL_EVERY = 10


def _run(model, corpus, mode, mask=None, seed=77):
    trainer = Trainer(model, mode=mode, mask=mask,
                      config=SAMOConfig(optimizer="adamw", lr=3e-3))
    rng = np.random.default_rng(seed)
    curve = []
    for it in range(N_ITERS):
        x, y = corpus.sample_batch(8, 32, rng)
        trainer.step(x, y)
        if (it + 1) % EVAL_EVERY == 0:
            curve.append(evaluate_perplexity(model, corpus, 4, 32, n_batches=3))
    return curve


def test_figure4_perplexity_parity(report):
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=40000, seed=0)

    dense_model = GPT(cfg, seed=0)
    dense_curve = _run(dense_model, corpus, "dense")

    samo_model = GPT(cfg, seed=0)
    eb = EarlyBirdPruner(sparsity=0.9, epsilon=0.2, window=2)
    warm = Trainer(samo_model, mode="dense", config=SAMOConfig(optimizer="adamw", lr=3e-3))
    wrng = np.random.default_rng(5)
    for _ in range(3):
        for _ in range(2):
            x, y = corpus.sample_batch(8, 32, wrng)
            warm.step(x, y)
        eb.observe(samo_model)
        if eb.converged:
            break
    samo_curve = _run(samo_model, corpus, "samo", mask=eb.ticket)

    iters = [(i + 1) * EVAL_EVERY for i in range(len(dense_curve))]
    rows = [
        {"iteration": it, "AxoNN ppl": round(d, 2), "AxoNN+SAMO ppl": round(s, 2)}
        for it, d, s in zip(iters, dense_curve, samo_curve)
    ]
    table = render_table(rows, title="Figure 4: validation perplexity (tiny GPT, p=0.9 Early-Bird)")
    plot = series_plot({"AxoNN": dense_curve, "AxoNN+SAMO": samo_curve}, iters,
                       title="Figure 4 (validation perplexity)")
    parity = samo_curve[-1] / dense_curve[-1]
    report("fig4_statistical_efficiency",
           table + "\n\n" + plot + f"\n\nfinal ppl ratio SAMO/dense = {parity:.2f} (paper: ~1.0)")
    # both learn, and the pruned network lands near the dense run
    assert dense_curve[-1] < dense_curve[0]
    assert samo_curve[-1] < samo_curve[0]
    assert parity < 1.6


def test_bench_samo_training_step(benchmark):
    """Wall-clock of one SAMO training iteration at tiny-GPT scale."""
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=10000, seed=0)
    model = GPT(cfg, seed=0)
    from repro.pruning import magnitude_prune

    trainer = Trainer(model, mode="samo", mask=magnitude_prune(model, 0.9),
                      config=SAMOConfig(optimizer="adamw", lr=1e-3))
    rng = np.random.default_rng(0)
    x, y = corpus.sample_batch(4, 32, rng)
    benchmark(trainer.step, x, y)
