"""Figure 8 — batch-time breakdown of GPT-3 2.7B at 128/256/512 GPUs.

Phases: compute, point-to-point, pipeline bubble, collective, other — for
AxoNN (A) and AxoNN+SAMO (B), as stacked in the paper's figure. Also
reproduces the narrative numbers: at 128 GPUs the p2p improvement is the
largest term (paper: 18% of AxoNN's batch time); at 512 the bubble and
collective improvements dominate (15% and 21%) while p2p fades (4%); the
compression overhead is 8-12%.
"""

from repro.models import get_spec
from repro.parallel import simulate_batch
from repro.reporting import render_table


def test_figure8_breakdown(report):
    spec = get_spec("gpt3-2.7b")
    rows, narrative = [], []
    for g in (128, 256, 512):
        a = simulate_batch(spec, g, "axonn")
        s = simulate_batch(spec, g, "axonn+samo")
        for label, b in (("A=AxoNN", a), ("B=AxoNN+SAMO", s)):
            rows.append(
                {
                    "GPUs": g,
                    "run": label,
                    "compute (s)": round(b.compute, 2),
                    "p2p (s)": round(b.p2p, 2),
                    "bubble (s)": round(b.bubble, 2),
                    "collective (s)": round(b.collective, 2),
                    "other (s)": round(b.other, 2),
                    "total (s)": round(b.total, 2),
                }
            )
        narrative.append(
            f"G={g}: savings as % of AxoNN batch time -> "
            f"p2p {100 * (a.p2p - s.p2p) / a.total:.0f}%, "
            f"bubble {100 * (a.bubble - s.bubble) / a.total:.0f}%, "
            f"collective {100 * (a.collective - s.collective) / a.total:.0f}%, "
            f"compress overhead {100 * s.notes['overhead'] / a.total:.0f}% "
            f"(paper@128: 18/9/6/12; @256: 16/13/11/10; @512: 4/15/21/8)"
        )
    table = render_table(rows, title="Figure 8: GPT-3 2.7B batch-time breakdown")
    report("fig8_breakdown", table + "\n\n" + "\n".join(narrative))

    # Qualitative assertions from the paper's Section VI-C.
    a128 = simulate_batch(spec, 128, "axonn")
    s128 = simulate_batch(spec, 128, "axonn+samo")
    p2p_sav = (a128.p2p - s128.p2p) / a128.total
    other_sav = (a128.bubble - s128.bubble + a128.collective - s128.collective) / a128.total
    assert p2p_sav > other_sav  # p2p dominates at 128 GPUs

    a512 = simulate_batch(spec, 512, "axonn")
    s512 = simulate_batch(spec, 512, "axonn+samo")
    assert (a512.p2p - s512.p2p) / a512.total < 0.10  # p2p fades at 512
    total_comm_red = (a512.communication - s512.communication) / a512.total
    assert 0.15 < total_comm_red < 0.45  # paper: 40%


def test_bench_breakdown_sweep(benchmark):
    spec = get_spec("gpt3-2.7b")

    def sweep():
        return [
            simulate_batch(spec, g, fw)
            for g in (128, 256, 512)
            for fw in ("axonn", "axonn+samo")
        ]

    benchmark(sweep)
