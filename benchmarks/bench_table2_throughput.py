"""Table II — % of peak half-precision throughput, GPT-3 13B, 256-2048 GPUs.

Flops per iteration come from Narayanan et al.'s formula (as in the
paper's Section V-C); Sputnik is credited with the dense flop count per
the paper's fair-comparison convention. Paper values:

    GPUs   Sputnik  DeepSpeed-3D  AxoNN  AxoNN+SAMO
    256    18.9     44.6          43.3   53.4
    512    18.5     39.9          39.7   48.8
    1024   16.8     30.1          32.2   41.1
    2048   12.2     20.6          22.9   31.0
"""

from repro.models import get_spec, narayanan_transformer_flops, percent_of_peak
from repro.parallel import FRAMEWORKS, simulate_batch
from repro.reporting import render_table

PAPER = {
    256: {"sputnik": 18.9, "deepspeed-3d": 44.6, "axonn": 43.3, "axonn+samo": 53.4},
    512: {"sputnik": 18.5, "deepspeed-3d": 39.9, "axonn": 39.7, "axonn+samo": 48.8},
    1024: {"sputnik": 16.8, "deepspeed-3d": 30.1, "axonn": 32.2, "axonn+samo": 41.1},
    2048: {"sputnik": 12.2, "deepspeed-3d": 20.6, "axonn": 22.9, "axonn+samo": 31.0},
}


def test_table2(report):
    spec = get_spec("gpt3-13b")
    flops = narayanan_transformer_flops(2048, 2048, 40, 5120, 50257)
    rows = []
    measured = {}
    for g in (256, 512, 1024, 2048):
        pct = {
            fw: percent_of_peak(flops, simulate_batch(spec, g, fw).total, g)
            for fw in FRAMEWORKS
        }
        measured[g] = pct
        rows.append(
            {
                "GPUs": g,
                "Sputnik": f"{pct['sputnik']:.1f} ({PAPER[g]['sputnik']})",
                "DeepSpeed-3D": f"{pct['deepspeed-3d']:.1f} ({PAPER[g]['deepspeed-3d']})",
                "AxoNN": f"{pct['axonn']:.1f} ({PAPER[g]['axonn']})",
                "AxoNN+SAMO": f"{pct['axonn+samo']:.1f} ({PAPER[g]['axonn+samo']})",
            }
        )
    report(
        "table2_throughput",
        render_table(rows, title="Table II: % peak fp16 throughput, GPT-3 13B (paper in parens)"),
    )
    for g, pct in measured.items():
        # orderings and decline with scale, as in the paper
        assert pct["axonn+samo"] > pct["axonn"] > pct["sputnik"]
        assert pct["axonn+samo"] > pct["deepspeed-3d"]
    assert measured[2048]["axonn+samo"] < measured[256]["axonn+samo"]


def test_bench_throughput_table(benchmark):
    spec = get_spec("gpt3-13b")
    flops = narayanan_transformer_flops(2048, 2048, 40, 5120, 50257)
    benchmark(
        lambda: [
            percent_of_peak(flops, simulate_batch(spec, g, fw).total, g)
            for g in (256, 2048)
            for fw in FRAMEWORKS
        ]
    )
