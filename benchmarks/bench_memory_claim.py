"""Section I / VI memory claim — GPT-3 2.7B: 80.16 GB -> 20.28 GB (-74%).

Total memory = model state (Eqs. 1-5) + per-GPU framework overhead x the
number of GPUs holding one model replica (G_inter chosen by the memory
model: 8 dense, 2 with SAMO).
"""

from repro.cluster import SUMMIT
from repro.models import get_spec
from repro.parallel import StorageMode, choose_g_inter, model_state_bytes
from repro.reporting import format_bytes, render_table


def test_memory_claim(report):
    spec = get_spec("gpt3-2.7b")
    gi_dense = choose_g_inter(spec, 128, StorageMode.DENSE)
    gi_samo = choose_g_inter(spec, 128, StorageMode.SAMO, 0.9)
    ov = SUMMIT.framework_overhead_bytes
    dense_state = model_state_bytes(spec, StorageMode.DENSE)
    samo_state = model_state_bytes(spec, StorageMode.SAMO, 0.9)
    dense_total = dense_state + ov * gi_dense
    samo_total = samo_state + ov * gi_samo
    reduction = 100 * (dense_total - samo_total) / dense_total
    rows = [
        {
            "configuration": "AxoNN (dense)",
            "model state": format_bytes(dense_state),
            "G_inter": gi_dense,
            "total": format_bytes(dense_total),
            "paper": "80.16 GB",
        },
        {
            "configuration": "AxoNN+SAMO (p=0.9)",
            "model state": format_bytes(samo_state),
            "G_inter": gi_samo,
            "total": format_bytes(samo_total),
            "paper": "20.28 GB",
        },
    ]
    table = render_table(rows, title="GPT-3 2.7B memory (model state + per-GPU overhead x G_inter)")
    report("memory_claim_2p7b", table + f"\n\nreduction: {reduction:.1f}% (paper: 74%)")
    assert 70 < reduction < 80


def test_memory_claim_all_models(report):
    """Extension: the same accounting across every Table I model."""
    rows = []
    for name in ("gpt3-xl", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b"):
        spec = get_spec(name)
        d = model_state_bytes(spec, StorageMode.DENSE)
        s = model_state_bytes(spec, StorageMode.SAMO, 0.9)
        rows.append(
            {
                "model": name,
                "dense state": format_bytes(d),
                "SAMO state": format_bytes(s),
                "state reduction (%)": round(100 * (d - s) / d, 1),
            }
        )
        assert 75 < 100 * (d - s) / d < 79  # Eq. 5 at p=0.9 ~ 78%
    report("memory_claim_all_models", render_table(rows, title="SAMO model-state reduction, p=0.9"))


def test_bench_g_inter_selection(benchmark):
    spec = get_spec("gpt3-13b")
    benchmark(choose_g_inter, spec, 2048, StorageMode.SAMO, 0.9)
