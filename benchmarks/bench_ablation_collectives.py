"""Ablation: flat ring vs hierarchical all-reduce on Summit's two-tier
fabric, and what each buys the data-parallel phase of Figures 5-8.

The batch-time simulator charges the calibrated flat-ring cost for the
gradient all-reduce. Summit's NVLink/IB split means a topology-aware
schedule (reduce-scatter in-node, all-reduce across nodes, all-gather
in-node) cuts cross-node traffic by the 6-GPU node arity. This bench
quantifies that headroom on the paper's workloads — and shows it is
*orthogonal* to SAMO: the sparse all-reduce shrinks the payload, the
hierarchical schedule moves it better, and they compose.
"""

import numpy as np
import pytest

from repro.cluster import (
    hierarchical_allreduce_time,
    ring_allreduce_time,
)
from repro.models import get_spec
from repro.parallel import gradient_bytes_per_gpu
from repro.reporting import render_table

MB = 1024 * 1024


def test_ablation_hierarchical_allreduce(report):
    rows = []
    spec = get_spec("gpt3-2.7b")
    for g_data, g_inter in ((16, 8), (32, 8), (64, 8)):
        dense_bytes = gradient_bytes_per_gpu(spec, g_inter, sparse=False)
        sparse_bytes = gradient_bytes_per_gpu(spec, g_inter, sparse=True, sparsity=0.9)
        flat_dense = ring_allreduce_time(dense_bytes, g_data)
        hier_dense = hierarchical_allreduce_time(dense_bytes, g_data)
        flat_sparse = ring_allreduce_time(sparse_bytes, g_data)
        hier_sparse = hierarchical_allreduce_time(sparse_bytes, g_data)
        rows.append({
            "G_data": g_data,
            "flat ring (dense)": f"{flat_dense * 1e3:.1f} ms",
            "hierarchical (dense)": f"{hier_dense * 1e3:.1f} ms",
            "flat + SAMO sparse": f"{flat_sparse * 1e3:.1f} ms",
            "hier + SAMO sparse": f"{hier_sparse * 1e3:.1f} ms",
            "composed gain": f"{flat_dense / hier_sparse:.1f}x",
        })
        # Hierarchical must win on these multi-node groups, for both
        # payloads, and composing with SAMO must compound the gain.
        assert hier_dense < flat_dense
        assert hier_sparse < flat_sparse
        assert hier_sparse < hier_dense
    report(
        "ablation_hierarchical_collectives",
        render_table(rows, title="Ablation: all-reduce schedule x payload (GPT-3 2.7B stage gradients)"),
    )


def test_ablation_group_size_sweep(report):
    """The hierarchical schedule's gain comes from the cross-node tier:
    inside one node the two schedules coincide exactly (same NVLink ring
    algebra); beyond it, both the latency term (far fewer hops) and the
    bandwidth term (IB traffic / node arity) favour hierarchical, and the
    gain grows with group size."""
    from repro.cluster import Topology

    n = 64 * MB
    rows = []
    gains = []
    for g in (6, 12, 48, 192, 768):
        # Give the flat ring its best case: topology-aware beta selection
        # (NVLink when the whole group fits in one node).
        topo = Topology(g)
        flat = ring_allreduce_time(n, g, topology=topo, ranks=list(range(g)))
        hier = hierarchical_allreduce_time(n, g)
        gains.append(flat / hier)
        rows.append({
            "G": g,
            "nodes": -(-g // 6),
            "flat ring": f"{flat * 1e3:.2f} ms",
            "hierarchical": f"{hier * 1e3:.2f} ms",
            "gain": f"{flat / hier:.2f}x",
        })
    report(
        "ablation_collective_group_sweep",
        render_table(rows, title=f"All-reduce schedule vs group size, payload {n // MB} MiB"),
    )
    # Single node: identical algebra (same NVLink ring), exact tie.
    assert gains[0] == pytest.approx(1.0)
    # Multi-node: hierarchical wins at every scale.
    assert all(gain > 1.0 for gain in gains[1:])


def test_bench_executable_hierarchical(benchmark):
    """Wall time of the executable p2p-built hierarchical all-reduce."""
    from repro.cluster import hierarchical_allreduce
    from repro.comm import run_parallel

    def run():
        def worker(comm):
            x = np.ones(4096, dtype=np.float32) * comm.rank
            return hierarchical_allreduce(comm, x, gpus_per_node=3)

        return run_parallel(6, worker)

    benchmark(run)
