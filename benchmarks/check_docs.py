"""Docs integrity checker: relative links and ``path::name`` citations.

``docs/cost_model.md`` cites the function implementing every equation as
``path::function`` (or ``path::Class.method``); this script fails when a
cited file is missing or no longer defines the cited name, and when a
relative markdown link in ``docs/*.md`` or ``README.md`` points nowhere.
Run standalone (the CI docs job) or through ``tests/test_docs.py``
(tier-1), so the docs cannot drift from the code.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: [text](target) — markdown links; external and anchor links are skipped
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: `path::name` citations (inside backticks, path must contain a slash)
_CITE = re.compile(r"`([\w./-]+/[\w./-]+\.(?:py|md))::([\w.]+)`")


def doc_files() -> list[Path]:
    return sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]


def check_links(path: Path) -> list[str]:
    """Broken relative links in one markdown file."""
    errors = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return errors


def check_citations(path: Path) -> list[str]:
    """``path::name`` citations whose file or definition is gone."""
    errors = []
    for file_part, name in _CITE.findall(path.read_text()):
        cited = REPO / file_part
        if not cited.exists():
            errors.append(f"{path.relative_to(REPO)}: cited file missing -> {file_part}")
            continue
        # Class.method cites the method; bare names cite a def, class, or
        # module-level assignment (constants like FIG_TEMPLATES)
        leaf = name.split(".")[-1]
        text = cited.read_text()
        defined = re.search(
            rf"^\s*(def|class)\s+{re.escape(leaf)}\b", text, re.M
        ) or re.search(rf"^{re.escape(leaf)}\s*[:=]", text, re.M)
        if not defined:
            errors.append(
                f"{path.relative_to(REPO)}: {file_part} no longer defines {name!r}"
            )
    return errors


def run() -> list[str]:
    errors: list[str] = []
    n_links = n_cites = 0
    for doc in doc_files():
        n_links += len(_LINK.findall(doc.read_text()))
        n_cites += len(_CITE.findall(doc.read_text()))
        errors += check_links(doc)
        errors += check_citations(doc)
    print(
        f"check_docs: {len(doc_files())} files, {n_links} links, "
        f"{n_cites} citations, {len(errors)} errors"
    )
    return errors


def main() -> int:
    errors = run()
    for e in errors:
        print(f"  {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
