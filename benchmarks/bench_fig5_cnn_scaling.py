"""Figure 5 — strong scaling of WideResnet-101 and VGG-19 (16-128 GPUs).

Pure data-parallel runs: DeepSpeed-3D, AxoNN, AxoNN+SAMO at 90% sparsity,
batch 128. The paper annotates AxoNN+SAMO's percentage speedup over AxoNN:
7-15% for WideResnet, 18-44% for VGG.
"""

from repro.models import TABLE_I, get_spec, gpu_counts
from repro.parallel import simulate_batch
from repro.reporting import log2_axis_plot, render_table


def _sweep(name, report):
    spec = get_spec(name)
    counts = gpu_counts(TABLE_I[name])
    rows, series = [], {"DeepSpeed-3D": [], "AxoNN": [], "AxoNN+SAMO": []}
    speedups = []
    for g in counts:
        d = simulate_batch(spec, g, "deepspeed-3d")
        a = simulate_batch(spec, g, "axonn")
        s = simulate_batch(spec, g, "axonn+samo")
        speedups.append(s.speedup_over(a))
        series["DeepSpeed-3D"].append(d.total * 1e3)
        series["AxoNN"].append(a.total * 1e3)
        series["AxoNN+SAMO"].append(s.total * 1e3)
        rows.append(
            {
                "GPUs": g,
                "DeepSpeed-3D (ms)": round(d.total * 1e3, 1),
                "AxoNN (ms)": round(a.total * 1e3, 1),
                "AxoNN+SAMO (ms)": round(s.total * 1e3, 1),
                "speedup over AxoNN (%)": round(s.speedup_over(a)),
            }
        )
    table = render_table(rows, title=f"Figure 5: {name} strong scaling (batch 128, p=0.9)")
    plot = log2_axis_plot(series, counts, title=f"Figure 5: {name} (time/iter, ms, log)")
    report(f"fig5_{name.replace('-', '_')}", table + "\n\n" + plot)
    return speedups


def test_figure5_wideresnet(report):
    speedups = _sweep("wideresnet-101", report)
    assert all(3 <= s <= 20 for s in speedups)  # paper band 7-15%


def test_figure5_vgg19(report):
    speedups = _sweep("vgg19", report)
    assert all(5 <= s <= 55 for s in speedups)  # paper band 18-44%
    assert speedups[-1] > speedups[0]


def test_bench_cnn_simulation(benchmark):
    spec = get_spec("vgg19")
    benchmark(simulate_batch, spec, 128, "axonn+samo")
