"""Monte-Carlo robust planning: CRN variance reduction, samples/sec.

Two contracts from the stochastic-planning ISSUE, both pinned here and
(with a fixed seed) in ``tests/test_stochastic.py``:

* **common random numbers work** — when every candidate is priced on
  the same sampled timelines, the variance of the paired-difference
  estimator between close candidates must be measurably below pricing
  each candidate on independent draws. The report shows the per-pair
  variance ratio for the top feasible candidates under ``flaky-links``.
* **sampling is decoupled from pricing** — the (candidate × condition)
  matrix is priced once and each timeline costs a dot product, so a
  warm session re-prices N samples at a large multiple of the cold
  rate, and raising N barely moves the wall clock.
"""

import time

import numpy as np

from repro.api import Job, Machine, Session
from repro.autotune.cache import EvaluationCache
from repro.reporting import render_table

MODEL, N_GPUS = "gpt3-xl", 16
PROCESS = "flaky-links"
SAMPLES, SEED = 16, 3
TOP_PAIRS = 4


def _mc(session, *, samples=SAMPLES, crn=True):
    job = Job(model=MODEL, n_gpus=N_GPUS)
    t0 = time.perf_counter()
    result = session.mc_robust_plan(
        job, PROCESS, samples=samples, seed=SEED, crn=crn
    )
    return result, time.perf_counter() - t0


def test_mc_plan(report):
    # -- CRN vs independent draws --------------------------------------
    session = Session(Machine.summit(), cache=EvaluationCache())
    crn_result, _ = _mc(session, crn=True)
    ind_result, _ = _mc(session, crn=False)

    best = crn_result.feasible[0]
    ind_by_config = {e.config: e for e in ind_result.entries}
    rows = []
    ratios = []
    for rival in crn_result.feasible[1 : 1 + TOP_PAIRS]:
        d_crn = np.asarray(rival.sample_costs) - np.asarray(best.sample_costs)
        d_ind = (
            np.asarray(ind_by_config[rival.config].sample_costs)
            - np.asarray(ind_by_config[best.config].sample_costs)
        )
        var_crn = float(np.var(d_crn, ddof=1))
        var_ind = float(np.var(d_ind, ddof=1))
        # the acceptance criterion: paired CRN differences are tighter
        assert var_crn < var_ind, (rival.config, var_crn, var_ind)
        ratios.append(var_ind / max(var_crn, 1e-300))
        rows.append({
            "vs best": f"{rival.config.framework} g_inter={rival.config.g_inter} mbs={rival.config.mbs}",
            "mean gap (s)": round(float(np.mean(d_crn)), 4),
            "var (CRN)": f"{var_crn:.3e}",
            "var (independent)": f"{var_ind:.3e}",
            "reduction": f"{var_ind / max(var_crn, 1e-300):.1e}x",
        })

    # -- samples/sec: cold vs warm, and N-scaling ----------------------
    cold_session = Session(Machine.summit(), cache=EvaluationCache())
    cold, cold_dt = _mc(cold_session, samples=64)
    warm, warm_dt = _mc(cold_session, samples=64)
    assert warm.stats["evaluated"] == 0, "warm run must be all cache hits"
    big, big_dt = _mc(cold_session, samples=1024)
    throughput = [
        {
            "run": name,
            "samples": n,
            "wall (s)": round(dt, 3),
            "samples/s": round(n / dt, 1),
            "evaluated": evaluated,
        }
        for name, n, dt, evaluated in (
            ("cold", 64, cold_dt, cold.stats["evaluated"]),
            ("warm", 64, warm_dt, warm.stats["evaluated"]),
            ("warm, 16x samples", 1024, big_dt, big.stats["evaluated"]),
        )
    ]
    # pricing is per condition, not per sample: 16x samples reuses the
    # same matrix, so the big run cannot cost anywhere near 16x cold
    assert big.stats["evaluated"] == 0
    assert big_dt < cold_dt * 4

    summary = "\n".join([
        render_table(
            rows,
            title=(
                f"CRN vs independent sampling ({MODEL}@{N_GPUS}, {PROCESS}, "
                f"samples={SAMPLES}, seed={SEED}; paired-difference variance "
                f"vs the best candidate)"
            ),
        ),
        "",
        render_table(
            throughput,
            title="MC throughput (matrix priced once; samples are dot products)",
        ),
        "",
        f"median variance reduction over top {len(ratios)} pairs: "
        f"{float(np.median(ratios)):.1e}x",
    ])
    report("mc_plan", summary)
