"""Figure 3 — inter-layer parallel pipeline schedule illustration.

Regenerates the exact configuration of the paper's figure: G_inter = 3,
five microbatches, backward = 2x forward. The per-GPU bubble must equal
(G_inter - 1) forward + backward passes = 6 time units.
"""

import pytest

from repro.parallel import simulate_pipeline


def test_figure3_schedule(report):
    tr = simulate_pipeline(3, 5, 1.0, 2.0)
    art = tr.ascii(1.0)
    lines = [
        "Figure 3: G_inter=3, 5 microbatches, t_b = 2 t_f",
        "(numbers = forward, [n] = backward, . = bubble)",
        "",
        art,
        "",
        f"makespan: {tr.makespan:.0f} units",
    ]
    for g in range(3):
        lines.append(
            f"GPU {g}: busy={tr.busy_time(g):.0f}  bubble={tr.idle_time(g):.0f} "
            f"(paper: 6 = (G_inter-1)*(t_f+t_b))"
        )
    report("fig3_pipeline_schedule", "\n".join(lines))
    for g in range(3):
        assert tr.idle_time(g) == pytest.approx(6.0)


def test_bench_pipeline_simulation(benchmark):
    """Event-simulator throughput on a large pipeline (32 stages x 256
    microbatches = 16k tasks)."""
    tr = benchmark(simulate_pipeline, 32, 256, 0.01, 0.03)
    assert tr.makespan > 0
