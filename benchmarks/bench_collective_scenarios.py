"""Scenario-aware collectives — parity anchor and degradation sweep.

Two jobs (mirroring ``bench_sim_scenarios.py`` for the collective phase):

1. verify the scenario-aware ring cost models *degenerate exactly* to
   the pristine-ring closed forms when every knob is neutral (the
   correctness anchor every degraded-machine plan builds on);
2. report how each named preset distorts a reference data-parallel
   allreduce — the collective-phase counterpart of the Figure 8
   "collective" bar under machine degradation.
"""

import pytest

from repro.cluster import SUMMIT, Topology, broadcast_time, ring_allreduce_time
from repro.models import get_spec
from repro.parallel import SCENARIOS, ClusterScenario, collective_time
from repro.reporting import render_table

NEUTRAL = ClusterScenario("neutral")


@pytest.mark.parametrize("nbytes", [10**6, 10**8, 2 * 10**9])
@pytest.mark.parametrize("group", [2, 8, 64])
def test_neutral_scenario_matches_pristine_ring_exactly(nbytes, group):
    """Every collective knob at 1.0 must reproduce the ring closed form
    bit-for-bit — the Eq. 4-7 uniform-limit anchor of the scenario layer."""
    expected = (
        2 * (group - 1) * SUMMIT.coll_alpha
        + (2 * (group - 1) / group) * nbytes / SUMMIT.coll_beta
    )
    assert ring_allreduce_time(nbytes, group) == pytest.approx(expected, rel=1e-15)
    assert ring_allreduce_time(nbytes, group, scenario=NEUTRAL) == ring_allreduce_time(
        nbytes, group
    )
    assert broadcast_time(nbytes, group, scenario=NEUTRAL) == broadcast_time(
        nbytes, group
    )


def test_collective_scenario_sweep(report):
    """Reference allreduce (GPT-3 2.7B SAMO gradient payload, G_data=64)
    under every preset. Ring-algorithm presets may only slow it down;
    presets that *switch the schedule* (``coll_algo="hierarchical"``)
    are allowed to beat the flat ring — that speedup is their point —
    but must still respect their own degradation ordering."""
    spec = get_spec("gpt3-2.7b")
    g_data = 64
    base = collective_time(spec, 2, g_data, sparse=True)
    rows = []
    for name in sorted(SCENARIOS):
        sc = SCENARIOS[name]
        t = collective_time(spec, 2, g_data, sparse=True, scenario=sc)
        rows.append({
            "scenario": name,
            "allreduce (s)": round(t, 4),
            "slowdown": f"{t / base:.2f}x",
            "degrades collectives": "y" if sc.degrades_collectives else "n",
        })
    text = render_table(
        rows,
        title=(
            f"Collective scenarios: GPT-3 2.7B SAMO gradient allreduce, "
            f"G_data={g_data} (pristine ring {base:.4f} s)"
        ),
    )
    report("collective_scenarios", text)
    by_name = {r["scenario"]: r for r in rows}
    assert by_name["uniform"]["allreduce (s)"] == round(base, 4)
    for name, r in by_name.items():
        t = float(r["allreduce (s)"])
        if SCENARIOS[name].coll_algo != "ring":
            continue  # a different schedule competes; ordering below
        assert t >= round(base, 4) - 1e-12, name
        if SCENARIOS[name].degrades_collectives:
            assert t > base, name
    # the two-level schedule must beat the flat ring at this scale, and a
    # degraded fabric must cost it more than a healthy one
    hier = float(by_name["hierarchical"]["allreduce (s)"])
    hier_deg = float(by_name["hierarchical-degraded"]["allreduce (s)"])
    assert hier < base
    assert hier < hier_deg


def test_degraded_ring_spares_intra_node_groups():
    sc = SCENARIOS["degraded-ring"]
    topo = Topology(12)
    intra, inter = [0, 1, 2, 3], [0, 6, 7, 8]
    assert ring_allreduce_time(
        10**8, 4, topology=topo, ranks=intra, scenario=sc
    ) == ring_allreduce_time(10**8, 4, topology=topo, ranks=intra)
    assert ring_allreduce_time(
        10**8, 4, topology=topo, ranks=inter, scenario=sc
    ) > ring_allreduce_time(10**8, 4, topology=topo, ranks=inter)


def test_bench_scenario_allreduce(benchmark):
    """Throughput of the scenario-aware cost model itself (it sits on the
    planner's hot path: hundreds of candidates x replicas x scenarios)."""
    sc = SCENARIOS["degraded"]

    def sweep():
        total = 0.0
        for g in (2, 4, 8, 16, 32, 64, 128):
            total += ring_allreduce_time(10**8, g, scenario=sc)
        return total

    assert benchmark(sweep) > 0
