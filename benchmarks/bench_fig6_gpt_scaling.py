"""Figure 6 — strong scaling of GPT-3 XL and GPT-3 2.7B (64-512 GPUs).

Four frameworks: Sputnik (sparse kernels in AxoNN), DeepSpeed-3D, AxoNN,
AxoNN+SAMO. Paper annotations of SAMO-over-AxoNN speedup: XL 10/21/34/47%,
2.7B 10/19/27/34%.
"""

from repro.models import TABLE_I, get_spec, gpu_counts
from repro.parallel import FRAMEWORKS, simulate_batch
from repro.reporting import log2_axis_plot, render_table

PAPER_ANNOTATIONS = {
    "gpt3-xl": {64: 10, 128: 21, 256: 34, 512: 47},
    "gpt3-2.7b": {64: 10, 128: 19, 256: 27, 512: 34},
}


def gpt_sweep(name, report, tag):
    spec = get_spec(name)
    counts = gpu_counts(TABLE_I[name])
    rows, series = [], {fw: [] for fw in FRAMEWORKS}
    speedups = {}
    for g in counts:
        res = {fw: simulate_batch(spec, g, fw) for fw in FRAMEWORKS}
        speedups[g] = res["axonn+samo"].speedup_over(res["axonn"])
        for fw in FRAMEWORKS:
            series[fw].append(res[fw].total)
        rows.append(
            {
                "GPUs": g,
                "Sputnik (s)": round(res["sputnik"].total, 2),
                "DeepSpeed-3D (s)": round(res["deepspeed-3d"].total, 2),
                "AxoNN (s)": round(res["axonn"].total, 2),
                "AxoNN+SAMO (s)": round(res["axonn+samo"].total, 2),
                "speedup (%)": round(speedups[g]),
                "paper (%)": PAPER_ANNOTATIONS.get(name, {}).get(g, ""),
            }
        )
    table = render_table(rows, title=f"{tag}: {name} strong scaling (p=0.9)")
    plot = log2_axis_plot(series, counts, title=f"{tag}: {name} time/iter (s, log)")
    report(f"{tag.lower().replace(' ', '')}_{name.replace('-', '_').replace('.', 'p')}", table + "\n\n" + plot)
    return speedups


def test_figure6_gpt3_xl(report):
    speedups = gpt_sweep("gpt3-xl", report, "Figure 6")
    vals = list(speedups.values())
    assert vals[-1] > vals[0]  # speedup grows with scale
    assert all(2 <= v <= 57 for v in vals)


def test_figure6_gpt3_2p7b(report):
    speedups = gpt_sweep("gpt3-2.7b", report, "Figure 6")
    vals = list(speedups.values())
    assert vals[-1] > vals[0]
    assert all(2 <= v <= 44 for v in vals)


def test_bench_hybrid_simulation(benchmark):
    spec = get_spec("gpt3-2.7b")
    benchmark(simulate_batch, spec, 512, "axonn+samo")
