"""Cross-fidelity drift: analytic vs sim vs measured, pinned per phase.

Three contracts from the measured-fidelity ISSUE, all enforced here and
(on the small templates) in ``tests/test_fidelity_drift.py``:

* **drift stays inside the floors** — every Fig. 6-8 template, priced
  under the executed proxy schedule, lands within
  :data:`repro.autotune.DRIFT_TOLERANCES` of the analytic closed form,
  phase by phase. Compute and other must match to round-off (they share
  the device model); p2p, bubble and collective get the documented
  structural slack.
* **the report is byte-deterministic** — two same-seed runs produce
  identical JSON documents, so the committed snapshot and the CI
  ``cmp`` smoke are meaningful.
* **the snapshot is pinned** — the rendered report must reproduce
  ``benchmarks/results/fidelity_drift.txt`` byte for byte; any change
  to the cost model, the executor, or the replay shows up as a diff in
  review rather than a silent drift.
"""

from repro.autotune.drift import (
    DRIFT_PHASES,
    DRIFT_TOLERANCES,
    FIG_TEMPLATES,
    drift_report,
    drift_report_json,
    render_drift_report,
)

from conftest import RESULTS_DIR

SNAPSHOT = RESULTS_DIR / "fidelity_drift.txt"


def test_fidelity_drift(report):
    doc = drift_report(seed=0)

    # -- every template, every phase, inside its floor ------------------
    assert doc["ok"], "drift past tolerance:\n" + "\n".join(doc["violations"])
    assert len(doc["templates"]) == len(FIG_TEMPLATES)
    for row in doc["templates"]:
        for phase in DRIFT_PHASES:
            entry = row["phases"][phase]
            assert entry["measured_rel_drift"] <= DRIFT_TOLERANCES[phase], (
                row["figure"], row["model"], phase, entry
            )
        # the vectorized program must agree with the scalar path exactly
        for phase in DRIFT_PHASES:
            assert row["phases"][phase]["analytic-batch_rel_drift"] == 0.0

    # -- calibration fit recovers the ground-truth constants ------------
    for name, entry in doc["calibration"]["constants"].items():
        assert entry["rel_error"] < 0.05, (name, entry)

    # -- byte determinism ----------------------------------------------
    again = drift_report(seed=0)
    assert drift_report_json(doc) == drift_report_json(again)

    # -- the committed snapshot is pinned ------------------------------
    text = render_drift_report(doc)
    if SNAPSHOT.exists():
        assert text + "\n" == SNAPSHOT.read_text(), (
            "rendered drift report no longer matches the committed "
            f"snapshot {SNAPSHOT}; regenerate it deliberately if the "
            "cost model changed"
        )
    report("fidelity_drift", text)
