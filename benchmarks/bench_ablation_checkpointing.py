"""Ablation: activation checkpointing — the *other* memory lever.

AxoNN trains with activation checkpointing on (paper Section II-E), and
the simulator's memory accounting assumes it. This ablation makes the
assumption visible: per-GPU activation memory with and without
checkpointing (every layer output alive until its backward vs only the
retained layer inputs), its interaction with SAMO's model-state savings,
and the sublinear-memory trade-off measured on the runnable engine's
:func:`repro.tensor.recompute_activation_bytes` accounting.
"""

import numpy as np

from repro.cluster import SUMMIT
from repro.models import GPT_CONFIGS, get_spec, transformer_activation_bytes
from repro.parallel import StorageMode, model_state_bytes
from repro.reporting import format_bytes, render_table
from repro.tensor import recompute_activation_bytes

MBS = 1


def _layer_activations(name: str, checkpointed: bool) -> int:
    """Per-layer-stack activation bytes (Korthikanti et al. accounting)."""
    cfg = GPT_CONFIGS[name]
    per_layer = transformer_activation_bytes(
        cfg.seq_len, cfg.d_model, cfg.n_heads, MBS, checkpointed=checkpointed
    )
    return cfg.n_layers * per_layer


def test_ablation_checkpointing_memory(report):
    rows = []
    for name in ("gpt3-2.7b", "gpt3-13b"):
        spec = get_spec(name)
        with_ckpt = _layer_activations(name, checkpointed=True)
        without = _layer_activations(name, checkpointed=False)
        state_dense = model_state_bytes(spec, StorageMode.DENSE)
        state_samo = model_state_bytes(spec, StorageMode.SAMO, sparsity=0.9)
        rows.append({
            "model": name,
            "activations (ckpt)": format_bytes(with_ckpt),
            "activations (no ckpt)": format_bytes(without),
            "ratio": f"{without / with_ckpt:.0f}x",
            "dense state": format_bytes(state_dense),
            "SAMO state": format_bytes(state_samo),
        })
        # Checkpointing must cut activations hard; and the two levers are
        # complementary: checkpointing attacks activations, SAMO attacks
        # model state — neither subsumes the other.
        assert with_ckpt < 0.1 * without
        assert state_samo < 0.5 * state_dense
    report(
        "ablation_checkpointing",
        render_table(rows, title="Activation checkpointing vs SAMO: which memory they cut (mbs=1)"),
    )


def test_ablation_checkpointing_feasibility(report):
    """Without checkpointing, dense GPT-3 13B activations alone blow the
    V100's 16 GB; with it, the model-state term dominates and SAMO's
    savings translate into smaller G_inter — the two optimizations are
    prerequisites of each other's usefulness."""
    cap = SUMMIT.gpu_memory_bytes
    with_ckpt = _layer_activations("gpt3-13b", checkpointed=True)
    without = _layer_activations("gpt3-13b", checkpointed=False)
    rows = [
        {"quantity": "V100 memory", "bytes": format_bytes(cap)},
        {"quantity": "activations, checkpointing on", "bytes": format_bytes(with_ckpt)},
        {"quantity": "activations, checkpointing off", "bytes": format_bytes(without)},
        {"quantity": "headroom left for model state (ckpt on)",
         "bytes": format_bytes(cap - with_ckpt - SUMMIT.framework_overhead_bytes)},
    ]
    report(
        "ablation_checkpointing_feasibility",
        render_table(rows, title="GPT-3 13B per-GPU activation budget (mbs=1)"),
    )
    assert with_ckpt < 0.2 * cap
    assert without > cap  # activations alone exceed device memory


def test_ablation_segment_count_tradeoff(report):
    """The O(L/S + S) sweet spot on a uniform-activation layer stack,
    exactly as the runnable engine accounts it."""
    layer_bytes = [4 * 1024 * 1024] * 48  # 48 transformer blocks, 4 MiB each
    rows = []
    peaks = {}
    for segments in (1, 2, 4, 7, 12, 24, 48):
        total, with_ckpt = recompute_activation_bytes(layer_bytes, segments)
        peaks[segments] = with_ckpt
        rows.append({
            "segments": segments,
            "peak activation bytes": format_bytes(with_ckpt),
            "vs no ckpt": f"{100 * with_ckpt / total:.0f}%",
        })
    report(
        "ablation_checkpoint_segments",
        render_table(rows, title="Segment-count trade-off, 48 x 4 MiB layers"),
    )
    # sqrt(48) ~ 7: the classic optimum beats both extremes.
    assert peaks[7] < peaks[1]
    assert peaks[7] < peaks[48]


def test_bench_checkpointed_training_step(benchmark):
    """Wall time of a checkpointed forward+backward vs the engine's plain
    path (the recompute overhead the paper's 'compute' phase would absorb)."""
    from repro.tensor import GELU, Linear, Sequential, Tensor, checkpoint_sequential

    rng = np.random.default_rng(0)
    layers = []
    for _ in range(8):
        layers += [Linear(64, 64, rng=rng), GELU()]
    model = Sequential(*layers)
    x_data = rng.standard_normal((16, 64)).astype(np.float32)

    def step():
        model.zero_grad()
        x = Tensor(x_data, requires_grad=True)
        out = checkpoint_sequential(list(model.children()), x, segments=4)
        out.sum().backward()

    benchmark(step)
