"""Ablation: structured vs unstructured sparsity (paper Section II-C).

The paper chooses *unstructured* pruning + dense compute (SAMO) because
unstructured sparse kernels lose to cuBLAS (Figure 1). Structured
(block / column-vector) sparsity is the published alternative — Chen et
al. beat cuBLAS from ~70% sparsity — but constrains the mask. This bench
puts the three execution strategies side by side at the paper's p=0.9:

* dense cuBLAS on an unstructured mask (SAMO's choice),
* Sputnik-class unstructured sparse kernels,
* Chen-class block-sparse tensor-core kernels on a structured mask,

using the calibrated kernel models, plus measured CPU timings of the real
NumPy/SciPy kernels (dense GEMM vs CSR vs BSR) as hardware corroboration.
"""

import numpy as np
import pytest

from repro.reporting import render_table
from repro.sparse import (
    BlockSparseMatrix,
    FlatCOO,
    block_crossover_sparsity,
    block_sparse_time,
    fc_layer_time,
)

BATCH = 576
SIZES = (512, 1024, 2048, 4096)
SPARSITY = 0.9


def test_ablation_structured_vs_unstructured(report):
    rows = []
    for n in SIZES:
        t_dense = fc_layer_time("cublas", BATCH, n, SPARSITY)
        t_sputnik = fc_layer_time("sputnik", BATCH, n, SPARSITY)
        t_block = block_sparse_time(BATCH, n, n, SPARSITY)
        rows.append({
            "weight": f"{n}^2",
            "dense cuBLAS (SAMO)": f"{t_dense * 1e3:.3f} ms",
            "Sputnik unstructured": f"{t_sputnik * 1e3:.3f} ms",
            "block-sparse (Chen)": f"{t_block * 1e3:.3f} ms",
            "block vs dense": f"{t_dense / t_block:.2f}x",
        })
        # Dense always beats unstructured (Figure 1); the structured
        # kernel wins once the GEMM is large enough to amortise its
        # indexing overhead (Chen et al. evaluate 2k-class GEMMs).
        assert t_dense < t_sputnik
        if n >= 2048:
            assert t_block < t_dense
    crossover = block_crossover_sparsity()
    rows.append({
        "weight": "crossover",
        "dense cuBLAS (SAMO)": "-",
        "Sputnik unstructured": "-",
        "block-sparse (Chen)": f"beats cuBLAS from p = {crossover:.2f}",
        "block vs dense": "paper cites ~0.70",
    })
    assert 0.6 <= crossover <= 0.8
    report(
        "ablation_structured_sparsity",
        render_table(rows, title="Ablation: execution strategy at 90% sparsity (modelled)"),
    )


def test_ablation_structured_cpu_corroboration(report):
    """Real kernels on this CPU show the same ordering driver: contiguous
    block compute recovers most of dense BLAS's advantage."""
    rng = np.random.default_rng(0)
    n = 1024
    import time

    def best_of(f, reps=3):
        ts = []
        for _ in range(reps):
            t0 = time.perf_counter()
            f()
            ts.append(time.perf_counter() - t0)
        return min(ts)

    x = rng.standard_normal((n, BATCH)).astype(np.float32)
    dense_w = rng.standard_normal((n, n)).astype(np.float32)
    unstructured = FlatCOO.random((n, n), SPARSITY, rng).to_csr()
    block = BlockSparseMatrix.random((n, n), (32, 32), SPARSITY, rng).to_scipy_bsr()

    t_dense = best_of(lambda: dense_w @ x)
    t_csr = best_of(lambda: unstructured @ x)
    t_bsr = best_of(lambda: block @ x)
    dense_rate = 2.0 * n * n * BATCH / t_dense
    csr_rate = 0.1 * 2.0 * n * n * BATCH / t_csr
    rows = [
        {"kernel": "dense BLAS GEMM", "time": f"{t_dense * 1e3:.2f} ms",
         "effective flop rate": f"{dense_rate / 1e9:.1f} Gflop/s"},
        {"kernel": "CSR spMM (unstructured)", "time": f"{t_csr * 1e3:.2f} ms",
         "effective flop rate": f"{csr_rate / 1e9:.1f} Gflop/s"},
        {"kernel": "BSR spMM (32x32 blocks)", "time": f"{t_bsr * 1e3:.2f} ms",
         "effective flop rate": f"{0.1 * 2.0 * n * n * BATCH / t_bsr / 1e9:.1f} Gflop/s"},
    ]
    report(
        "ablation_structured_cpu",
        render_table(rows, title=f"Measured CPU kernels, n={n}, batch={BATCH}, p={SPARSITY}"),
    )
    # The Figure 1 driver, measured for real: the dense kernel's flop rate
    # dwarfs the sparse kernel's, so computing 10x the flops still wins or
    # ties. (SciPy's BSR is reported for completeness; unlike GPU block
    # kernels it is not a tuned code path, so no ordering is asserted.)
    assert dense_rate > 2.0 * csr_rate


@pytest.mark.parametrize("n", [1024])
def test_bench_block_spmm(benchmark, n):
    rng = np.random.default_rng(1)
    bs = BlockSparseMatrix.random((n, n), (32, 32), SPARSITY, rng)
    bsr = bs.to_scipy_bsr()
    x = rng.standard_normal((n, 64)).astype(np.float32)
    benchmark(lambda: bsr @ x)
