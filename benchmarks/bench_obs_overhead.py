"""Observability overhead: the disabled path must cost < 5%.

The event engine is the hottest loop in the repo (a single planner run
drives it hundreds of thousands of events), so the tracing hooks in
:meth:`repro.cluster.events.EventLoop.run` are gated on one attribute
check. This bench pins that claim two ways:

1. **micro** — the instrumented ``EventLoop`` (observability disabled)
   against a replica of the pre-instrumentation loop body, min-of-N
   over a large no-op event storm; asserted ``< 5%``;
2. **macro** — a full ``sim``-fidelity batch breakdown with
   observability disabled vs enabled (tracer + metrics collecting),
   reported for scale but not asserted (enabled mode is allowed to
   cost what it costs).
"""

from __future__ import annotations

import heapq
import time

from repro.models import get_spec
from repro.obs import MetricsRegistry, Tracer, observed
from repro.cluster.events import EventLoop
from repro.parallel import simulate_batch

N_EVENTS = 100_000
REPEATS = 7
BUDGET = 0.05


class _BaselineLoop(EventLoop):
    """The pre-instrumentation ``run`` body, byte-for-byte semantics."""

    def run(self, max_events: int = 10_000_000) -> float:
        n = 0
        while self._heap:
            t, _, fn = heapq.heappop(self._heap)
            self.now = t
            fn()
            n += 1
            if n > max_events:
                raise RuntimeError("event budget exceeded")
        self.events_processed += n
        return self.now


def _storm(loop: EventLoop, n: int) -> float:
    """Time one drain of ``n`` no-op events (scheduling excluded)."""
    fn = lambda: None  # noqa: E731
    for i in range(n):
        loop.at(float(i % 97), fn)
    t0 = time.perf_counter()
    loop.run()
    return time.perf_counter() - t0


def _measure() -> tuple[float, float]:
    """Interleaved min-of-N for both loops.

    Back-to-back blocks of one class then the other bias the comparison
    by >10% (allocator/cache warmup accrues to whichever runs second);
    alternating runs and taking each side's min removes it.
    """
    _storm(_BaselineLoop(), N_EVENTS)  # warmup
    _storm(EventLoop(), N_EVENTS)
    bases, instrs = [], []
    for _ in range(REPEATS):
        bases.append(_storm(_BaselineLoop(), N_EVENTS))
        instrs.append(_storm(EventLoop(), N_EVENTS))
    return min(bases), min(instrs)


def test_disabled_overhead_under_budget(report):
    base, instr = _measure()
    overhead = instr / base - 1.0

    # macro scale: one sim-fidelity breakdown, disabled vs enabled
    spec = get_spec("gpt3-2.7b")
    kwargs = dict(scenario="degraded-ring", overlap=True)
    t0 = time.perf_counter()
    disabled = simulate_batch(spec, 128, "axonn", **kwargs)
    t_disabled = time.perf_counter() - t0
    tracer, registry = Tracer(), MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        t0 = time.perf_counter()
        enabled = simulate_batch(spec, 128, "axonn", **kwargs)
        t_enabled = time.perf_counter() - t0
    assert enabled.total == disabled.total  # enabled never moves a number

    lines = [
        f"event storm: {N_EVENTS} no-op events, best of {REPEATS}",
        f"  baseline loop (pre-instrumentation replica): {base * 1e3:8.2f} ms",
        f"  instrumented loop, observability disabled:   {instr * 1e3:8.2f} ms",
        f"  disabled overhead: {overhead * 100:+.2f}%  (budget {BUDGET * 100:.0f}%)",
        "",
        "macro: sim-fidelity breakdown (gpt3-2.7b, 128 GPUs, degraded-ring, overlap)",
        f"  observability disabled: {t_disabled * 1e3:8.2f} ms",
        f"  tracer + metrics on:    {t_enabled * 1e3:8.2f} ms "
        f"({t_enabled / t_disabled:.2f}x, {len(tracer)} spans collected)",
        "  (identical batch totals either way — spans never move a number)",
    ]
    report("obs_overhead", "\n".join(lines))
    assert overhead < BUDGET, (
        f"disabled observability costs {overhead * 100:.2f}% "
        f"(> {BUDGET * 100:.0f}% budget)"
    )
