"""Figure 1 — sparse libraries vs cuBLAS for a 90%-sparse FC layer.

Two reproductions:

* the calibrated GPU kernel models print the paper's series (cuSPARSE,
  Sputnik, cuBLAS over weight sizes 128^2..4096^2, batch 576) including
  the headline 6-22x dense-over-Sputnik gap;
* real CPU kernels (SciPy CSR vs dense BLAS) are timed with
  pytest-benchmark at a reduced size, demonstrating the same qualitative
  conclusion on this machine's hardware.
"""

import numpy as np
import pytest

from repro.reporting import render_table, series_plot
from repro.sparse import FlatCOO, figure1_sweep, sparse_over_dense_ratio, spmm_dense, spmm_scipy

BATCH = 576
BENCH_N = 1024  # CPU-bench weight size (full 4096 sweep is model-based)


def test_figure1_model_sweep(report):
    sweep = figure1_sweep()
    rows = []
    for i, n in enumerate(sweep["size"]):
        rows.append(
            {
                "weight": f"{n}^2",
                "cuSPARSE (ms)": sweep["cusparse"][i],
                "Sputnik (ms)": sweep["sputnik"][i],
                "cuBLAS (ms)": sweep["cublas"][i],
                "Sputnik/cuBLAS": round(sparse_over_dense_ratio(n), 1),
            }
        )
    table = render_table(rows, title="Figure 1: FC layer at 90% sparsity, batch 576 (model)")
    plot = series_plot(
        {k: sweep[k] for k in ("cusparse", "sputnik", "cublas")},
        sweep["size"],
        logy=True,
        title="Figure 1 (log time, ms)",
    )
    ratios = [sparse_over_dense_ratio(n) for n in sweep["size"]]
    summary = f"dense over Sputnik: {min(ratios):.1f}x .. {max(ratios):.1f}x (paper: 6-22x)"
    report("fig1_sparse_vs_dense", table + "\n\n" + plot + "\n\n" + summary)
    assert 5.5 < min(ratios) and max(ratios) < 24


@pytest.fixture(scope="module")
def fc_problem():
    rng = np.random.default_rng(0)
    w = FlatCOO.random((BENCH_N, BENCH_N), 0.9, rng)
    x = rng.standard_normal((BATCH, BENCH_N)).astype(np.float32)
    w_dense = w.to_dense()
    return w, w_dense, x


def test_bench_cpu_dense_gemm(benchmark, fc_problem):
    """The cuBLAS strategy: explicit zeros + dense GEMM."""
    w, w_dense, x = fc_problem
    benchmark(lambda: x @ w_dense.T)


def test_bench_cpu_sparse_csr(benchmark, fc_problem):
    """The sparse-library strategy: CSR spMM (10% of the flops)."""
    w, _, x = fc_problem
    csr = w.to_csr()
    benchmark(lambda: (csr @ x.T).T)


def test_bench_cpu_densify_cost(benchmark, fc_problem):
    """Cost of materialising the dense matrix from COO (amortised in
    training: the paper keeps θ16 permanently dense)."""
    w, _, x = fc_problem
    benchmark(w.to_dense)
