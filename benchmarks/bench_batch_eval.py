"""Batch pricing engine vs the scalar dispatch loop (Figures 6-8 spaces).

The ``analytic-batch`` estimator prices the whole candidate grid × scenario
set as one set of numpy array programs. This bench times the *pricing
stage* — the part the ISSUE vectorizes — head to head on the paper's
search spaces: the scalar baseline dispatches ``evaluate`` per cell (per
scenario column via ``with_scenario``, exactly what ``_evaluate_space``
did before batch support), the batch path makes ONE ``evaluate_batch``
call. Parity of every cell is pinned separately in
``tests/test_batch_eval.py``; here we pin the speedup:

* every workload must clear the 5x CI floor;
* the config × scenario matrix rows — the shape ``robust_plan`` prices —
  must demonstrate the >= 10x the batch engine was built for.

Best-of-5 timing keeps the numbers stable under CI noise.
"""

import time

from repro.api.scenario_set import get_scenario_set
from repro.autotune import VectorizedAnalyticEstimator
from repro.autotune.space import SearchSpace
from repro.models import get_spec
from repro.reporting import render_table

#: (model, n_gpus, scenario set) — Fig. 6 spaces single-column, then the
#: robust-planning matrices (grid × scenario columns) for Fig. 6/8 subjects
WORKLOADS = (
    ("gpt3-xl", 64, "neutral"),
    ("gpt3-2.7b", 128, "neutral"),
    ("gpt3-2.7b", 512, "neutral"),
    ("gpt3-xl", 64, "hierarchical-mixed"),
    ("gpt3-2.7b", 128, "collective-degraded"),
)

CI_FLOOR = 5.0
MATRIX_TARGET = 10.0


def _best_of(fn, repeats=5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t)
    return best


def test_batch_pricing_speedup(report):
    rows = []
    matrix_speedups = []
    for model, n_gpus, set_name in WORKLOADS:
        spec = get_spec(model)
        configs = list(SearchSpace(spec, n_gpus).candidates())
        columns = get_scenario_set(set_name).scenarios
        est = VectorizedAnalyticEstimator(spec)

        def scalar_loop():
            for sc in columns:
                cell = est.with_scenario(sc)
                for c in configs:
                    cell.evaluate(c)

        def batch_call():
            est.evaluate_batch(configs, columns)

        t_scalar = _best_of(scalar_loop)
        t_batch = _best_of(batch_call)
        speedup = t_scalar / t_batch
        n_cells = len(configs) * len(columns)
        rows.append({
            "model": model,
            "GPUs": n_gpus,
            "scenario set": set_name,
            "cells": n_cells,
            "scalar (ms)": round(t_scalar * 1e3, 2),
            "batch (ms)": round(t_batch * 1e3, 2),
            "speedup": round(speedup, 1),
        })
        assert speedup >= CI_FLOOR, (
            f"{model}@{n_gpus} x {set_name}: {speedup:.1f}x < {CI_FLOOR}x floor"
        )
        if len(columns) > 1:
            matrix_speedups.append(speedup)

    assert max(matrix_speedups) >= MATRIX_TARGET, (
        f"no matrix workload reached {MATRIX_TARGET}x: {matrix_speedups}"
    )
    report(
        "bench_batch_eval",
        render_table(
            rows,
            title=(
                "Pricing stage: scalar evaluate() loop vs one evaluate_batch() "
                f"(best of 5; CI floor {CI_FLOOR:.0f}x, matrix target "
                f">= {MATRIX_TARGET:.0f}x)"
            ),
        ),
    )
