"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, printing the
same rows/series the paper reports and writing them to
``benchmarks/results/<name>.txt`` so output survives pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable writing a named report to disk and stdout."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n(saved to {path})")

    return _write
