"""Autotune planner vs the paper's hand-picked configurations.

The paper fixes one hybrid-parallel config per (model, GPU count) for
Figures 6-8: checkpointing on, mbs 1, and the smallest feasible
power-of-two ``G_inter`` per framework (Section IV-B). Under that same
protocol the planner must *recover* those choices from the raw search
space — and with the protocol relaxed it should only ever find faster
configs, never slower.

Also includes the micro-bench note for the ``functools.lru_cache``
additions to the pure kernel-model functions.
"""

import time

from repro.autotune import EvaluationCache, Planner
from repro.models import TABLE_I, get_spec, gpu_counts
from repro.parallel import StorageMode, choose_g_inter
from repro.reporting import render_table

#: Figure 8 machines for GPT-3 2.7B plus the Figure 6/7 sweep endpoints.
PAPER_PROTOCOL = dict(microbatch_sizes=(1,), explore_no_checkpoint=False)


def _paper_config_time(res, framework: str, g_inter: int) -> float:
    """Total time of the paper's config, read from the same search."""
    for e in res.evaluations:
        c = e.config
        if (
            c.framework == framework
            and c.g_inter == g_inter
            and c.g_tensor == 1
            and c.mbs == 1
            and c.checkpoint_activations
        ):
            return e.total_time
    raise AssertionError(f"paper config {framework}/G_inter={g_inter} not searched")


def _recovery_rows(name: str) -> list[dict]:
    """Per GPU count: the planner must pick the paper's G_inter, or a
    config it proved strictly faster in the same search."""
    spec = get_spec(name)
    rows = []
    for g in gpu_counts(TABLE_I[name]):
        res = Planner(name, g, cache=EvaluationCache(), **PAPER_PROTOCOL).plan()
        samo, dense = res.best_for("axonn+samo"), res.best_for("axonn")
        paper_samo = choose_g_inter(spec, g, StorageMode.SAMO, 0.9)
        paper_dense = choose_g_inter(spec, g, StorageMode.DENSE)

        def verdict(ev, fw, paper_gi):
            if ev.config.g_inter == paper_gi:
                return "recovered"
            if ev.total_time < _paper_config_time(res, fw, paper_gi):
                return "faster"
            return "WORSE"

        rows.append({
            "GPUs": g,
            "planner G_inter (SAMO)": samo.config.g_inter,
            "paper G_inter (SAMO)": paper_samo,
            "planner G_inter (dense)": dense.config.g_inter,
            "paper G_inter (dense)": paper_dense,
            "SAMO speedup %": round(samo.breakdown.speedup_over(dense.breakdown)),
            "SAMO": verdict(samo, "axonn+samo", paper_samo),
            "dense": verdict(dense, "axonn", paper_dense),
        })
    return rows


def test_planner_recovers_fig6_configs(report):
    """GPT-3 XL and 2.7B (Figure 6, and 2.7B is the Figure 8 subject)."""
    blocks = []
    for name in ("gpt3-xl", "gpt3-2.7b"):
        rows = _recovery_rows(name)
        assert all(r["SAMO"] == "recovered" for r in rows), name
        assert all(r["dense"] in ("recovered", "faster") for r in rows), name
        assert all(2 <= r["SAMO speedup %"] <= 57 for r in rows), name
        blocks.append(render_table(rows, title=f"Planner vs paper configs: {name}"))
    report("autotune_recovery_fig6", "\n\n".join(blocks))


def test_planner_recovers_fig7_configs(report):
    """GPT-3 6.7B and 13B (Figure 7): exact recovery at every scale."""
    blocks = []
    for name in ("gpt3-6.7b", "gpt3-13b"):
        rows = _recovery_rows(name)
        assert all(r["SAMO"] == "recovered" for r in rows), name
        assert all(r["dense"] == "recovered" for r in rows), name
        blocks.append(render_table(rows, title=f"Planner vs paper configs: {name}"))
    report("autotune_recovery_fig7", "\n\n".join(blocks))


def test_relaxed_protocol_never_slower(report):
    """Opening the space (mbs, checkpointing off) can only help."""
    rows = []
    for g in (128, 256, 512):
        strict = Planner(
            "gpt3-2.7b", g, cache=EvaluationCache(), **PAPER_PROTOCOL
        ).plan()
        relaxed = Planner("gpt3-2.7b", g, cache=EvaluationCache()).plan()
        assert relaxed.best.total_time <= strict.best.total_time + 1e-12
        rows.append({
            "GPUs": g,
            "paper-protocol best (s)": round(strict.best.total_time, 3),
            "relaxed best (s)": round(relaxed.best.total_time, 3),
            "gain %": round(
                100 * (strict.best.total_time / relaxed.best.total_time - 1), 1
            ),
            "relaxed config": relaxed.best.config.describe(),
        })
    report(
        "autotune_relaxed_protocol",
        render_table(rows, title="What-if: relaxing the paper's training protocol"),
    )


def test_memoized_replan_is_instant(report):
    """The ISSUE's acceptance check: a repeated identical search returns
    from the cache without re-evaluating any config."""
    cache = EvaluationCache()
    p1 = Planner("gpt3-2.7b", 512, cache=cache)
    t0 = time.perf_counter()
    p1.plan()
    cold = time.perf_counter() - t0

    p2 = Planner("gpt3-2.7b", 512, cache=cache)
    t0 = time.perf_counter()
    p2.plan()
    warm = time.perf_counter() - t0

    assert p2.stats.evaluated == 0
    assert p2.stats.cache_hits == p1.stats.candidates
    note = (
        f"cold plan: {p1.stats.candidates} candidates evaluated in {cold*1e3:.1f} ms\n"
        f"warm replan: 0 evaluated, {p2.stats.cache_hits} cache hits, {warm*1e3:.1f} ms\n"
        f"speedup: {cold/warm:.1f}x"
    )
    report("autotune_memoization", note)


def test_lru_cache_micro_note(report):
    """Micro-bench note for the lru_cache satellite: the pure kernel-model
    functions are called with a handful of distinct shapes thousands of
    times per figure sweep; caching removes the recomputation.

    The baseline times the *unwrapped* ``fc_layer_time`` (two calls per
    ratio, what ``sparse_over_dense_ratio`` computes internally) so no
    layer of caching hides the real work. Correctness is asserted on
    ``cache_info`` counts; the timings go to the note only (wall-clock
    comparisons flake on shared CI runners).
    """
    from repro.sparse.kernel_models import fc_layer_time, sparse_over_dense_ratio

    sizes = (128, 256, 512, 1024, 2048, 4096)
    n_calls = 2000

    t0 = time.perf_counter()
    for _ in range(n_calls):
        for n in sizes:
            fc_layer_time.__wrapped__("sputnik", 576, n, 0.9)
            fc_layer_time.__wrapped__("cublas", 576, n, 0.9)
    uncached = time.perf_counter() - t0

    sparse_over_dense_ratio.cache_clear()
    fc_layer_time.cache_clear()
    t0 = time.perf_counter()
    for _ in range(n_calls):
        for n in sizes:
            sparse_over_dense_ratio(n)
    cached = time.perf_counter() - t0

    info = sparse_over_dense_ratio.cache_info()
    assert info.misses == len(sizes)
    assert info.hits == n_calls * len(sizes) - len(sizes)
    assert fc_layer_time.cache_info().currsize == 2 * len(sizes)
    report(
        "lru_cache_micro_note",
        f"kernel-model evaluation, {n_calls} x {len(sizes)} shapes:\n"
        f"  uncached fc_layer_time pairs {uncached*1e3:.1f} ms, "
        f"lru_cached sparse_over_dense_ratio {cached*1e3:.1f} ms "
        f"({uncached/max(cached, 1e-9):.0f}x)\n"
        f"  cache_info: {info}",
    )


def test_bench_plan_cold(benchmark):
    """pytest-benchmark hook: one full cold search of the 512-GPU space."""
    def cold_plan():
        return Planner("gpt3-2.7b", 512, cache=EvaluationCache()).plan()

    result = benchmark(cold_plan)
    assert result.best.config.framework == "axonn+samo"
