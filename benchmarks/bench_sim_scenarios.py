"""Heterogeneous pipeline engine — scenario sweep and uniform-limit check.

Two jobs:

1. verify the heterogeneity-aware engine *degenerates exactly* to the
   paper's Eq. 6-7 bubble in the uniform-stage, free-message limit
   (the correctness anchor for every scenario built on top);
2. report how each named scenario preset distorts the same baseline
   pipeline — the scenario-diversity counterpart of Figure 3.
"""

import pytest

from repro.parallel import SCENARIOS, bubble_time, run_scenario, simulate_pipeline
from repro.reporting import render_table


@pytest.mark.parametrize(
    "g,m,tf,tb",
    [(2, 4, 1.0, 2.0), (3, 5, 1.0, 2.0), (4, 8, 0.02, 0.06), (8, 32, 0.013, 0.039)],
)
def test_uniform_limit_matches_eq7_exactly(g, m, tf, tb):
    """Per-stage sequences with equal entries and zero-cost links must
    reproduce (G_inter - 1)(t_f + t_b) on every GPU to float tolerance."""
    trace = simulate_pipeline(g, m, [tf] * g, [tb] * g, msg_time=[0.0] * (g - 1))
    eq7 = bubble_time(g, tf * g, tb * g)
    for gpu in range(g):
        assert trace.idle_time(gpu) == pytest.approx(eq7, rel=1e-12)
    # and the makespan decomposes into ideal compute + the Eq. 7 bubble
    assert trace.makespan == pytest.approx(m * (tf + tb) + eq7, rel=1e-12)


def test_scenario_sweep(report):
    g, m, tf, tb = 4, 8, 1.0, 2.0
    rows = []
    for name in sorted(SCENARIOS):
        trace, info = run_scenario(name, g_inter=g, n_microbatches=m, t_f=tf, t_b=tb)
        rows.append({
            "scenario": name,
            "makespan (s)": round(trace.makespan, 2),
            "mean idle (s)": round(info["mean_idle"], 2),
            "max idle (s)": round(info["max_idle"], 2),
            "Eq.7 bubble (s)": round(info["eq7_bubble"], 2),
            "exposed vs ideal (s)": round(trace.makespan - m * (tf + tb), 2),
        })
    text = render_table(
        rows,
        title=(
            f"Heterogeneity scenarios, G_inter={g}, m={m}, "
            f"t_f={tf:g}, t_b={tb:g} (uniform baseline)"
        ),
    )
    report("sim_scenarios", text)
    by_name = {r["scenario"]: r for r in rows}
    # the uniform preset is the degenerate anchor; every distortion costs
    assert by_name["uniform"]["mean idle (s)"] == by_name["uniform"]["Eq.7 bubble (s)"]
    for name in ("straggler", "slow-link", "skewed", "contention"):
        assert by_name[name]["makespan (s)"] >= by_name["uniform"]["makespan (s)"]


def test_bench_hetero_pipeline(benchmark):
    """Engine throughput with per-stage times, per-link delays, and
    contention on (16 stages x 128 microbatches = 4k tasks)."""
    g = 16
    tf = [0.01 * (1 + 0.05 * i) for i in range(g)]
    tb = [3 * t for t in tf]
    links = [0.002 if (i + 1) % 6 else 0.008 for i in range(g - 1)]
    tr = benchmark(
        simulate_pipeline, g, 128, tf, tb, msg_time=links, link_contention=True
    )
    assert tr.makespan > 0
