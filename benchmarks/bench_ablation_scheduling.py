"""Ablation: AxoNN's pipeline scheduling optimizations (paper Section II-E).

AxoNN's inter-layer engine wins over synchronous pipelines through two
mechanisms the paper names explicitly: (i) *asynchronous messaging* —
senders never block on the transport — and (ii) *message-driven 1F1B
scheduling* — backward work is preferred and in-flight forwards are
bounded, capping activation memory at ``G_inter - stage`` microbatches.
The batch-time simulator encodes the net effect as a calibrated
DeepSpeed p2p penalty; this ablation derives the behaviour from first
principles with the event-driven scheduler, pricing each flag
separately on a Figure-3-shaped workload.
"""

import pytest

from repro.parallel import simulate_pipeline
from repro.reporting import render_table

G_INTER = 8
MICROBATCHES = 32
T_F, T_B = 1.0, 2.0
MSG = 0.25  # exposed per-message transfer, in forward-pass units


def test_ablation_scheduling_policies(report):
    policies = {
        "AxoNN (async + 1F1B)": {},
        "blocking sends": {"blocking_sends": True},
        "FIFO (no bwd preference)": {"prefer_backward": False},
        "blocking + FIFO (sync pipeline)": {"blocking_sends": True, "prefer_backward": False},
        "GPipe-style (unbounded fwds)": {"prefer_backward": False, "bound_in_flight": False},
    }
    rows = []
    results = {}
    for label, kw in policies.items():
        tr = simulate_pipeline(G_INTER, MICROBATCHES, T_F, T_B, msg_time=MSG, **kw)
        results[label] = tr
        rows.append({
            "policy": label,
            "makespan": f"{tr.makespan:.1f}",
            "mean idle": f"{tr.mean_idle_time():.1f}",
            "peak activations (stage 0)": tr.peak_in_flight[0],
        })
    report(
        "ablation_scheduling",
        render_table(
            rows,
            title=f"Pipeline scheduling, G_inter={G_INTER}, m={MICROBATCHES}, "
                  f"t_b=2t_f, msg={MSG}",
        ),
    )
    axonn = results["AxoNN (async + 1F1B)"]
    # (i) asynchronous messaging: blocking the sender must cost makespan.
    assert axonn.makespan < results["blocking sends"].makespan
    assert axonn.makespan < results["blocking + FIFO (sync pipeline)"].makespan
    # (ii) 1F1B bounds activation memory at G_inter; GPipe-style grows to
    # m. The bound costs some makespan (warmup throttling) — the classic
    # memory-for-time trade — but stays within ~20% while cutting peak
    # activations 4x on this workload.
    assert axonn.peak_in_flight[0] == G_INTER
    gpipe = results["GPipe-style (unbounded fwds)"]
    assert gpipe.peak_in_flight[0] == MICROBATCHES
    assert axonn.makespan <= 1.2 * gpipe.makespan


def test_ablation_message_cost_sensitivity(report):
    """The async advantage scales with message cost: at msg=0 the policies
    tie; as messages grow, the synchronous pipeline pays ~2 messages per
    microbatch per stage of extra critical path."""
    rows = []
    gaps = []
    for msg in (0.0, 0.1, 0.25, 0.5, 1.0):
        a = simulate_pipeline(G_INTER, MICROBATCHES, T_F, T_B, msg_time=msg)
        s = simulate_pipeline(
            G_INTER, MICROBATCHES, T_F, T_B, msg_time=msg,
            blocking_sends=True, prefer_backward=False,
        )
        gap = s.makespan / a.makespan
        gaps.append(gap)
        rows.append({
            "msg cost": msg,
            "AxoNN makespan": f"{a.makespan:.1f}",
            "sync pipeline makespan": f"{s.makespan:.1f}",
            "penalty": f"{gap:.3f}x",
        })
    report(
        "ablation_scheduling_msg_cost",
        render_table(rows, title="Sync-pipeline penalty vs message cost"),
    )
    assert gaps[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-9 for a, b in zip(gaps, gaps[1:]))  # monotone
    assert gaps[-1] > 1.02  # real penalty once messages cost real time
    # Note: the schedule mechanics alone explain a few percent; the
    # calibrated deepspeed_p2p_penalty (1.30) additionally absorbs
    # implementation overheads (synchronous NCCL p2p handshakes, no
    # compute overlap) that the pure event schedule does not model.


def test_bench_pipeline_simulation(benchmark):
    benchmark(
        simulate_pipeline, G_INTER, MICROBATCHES, T_F, T_B, msg_time=MSG
    )
