"""Ablation: the microbatch-size knob in Eqs. 6-11.

The paper fixes ``mbs`` and varies ``G_inter``; its own equations expose
a second lever. Larger microbatches send fewer messages (Eq. 9's
``B/(mbs·G_data)`` factor shrinks) **and** transfer more bytes per
message (amortising the per-message α), but each microbatch takes longer
per stage, so the Eq. 6-7 warmup/drain bubble grows linearly with
``mbs``. This bench sweeps the trade-off with the same batch-time engine
used for Figures 6-8 and locates the optimum the paper's fixed choice
sits near.
"""

import pytest

from repro.models import get_spec
from repro.parallel import simulate_batch
from repro.reporting import render_table


def test_ablation_mbs_sweep(report):
    spec = get_spec("gpt3-2.7b")
    g = 256
    rows = []
    totals = {}
    for mbs in (1, 2, 4, 8):
        b = simulate_batch(spec, g, "axonn+samo", mbs=mbs)
        totals[mbs] = b.total
        rows.append({
            "mbs": mbs,
            "p2p (s)": round(b.p2p, 3),
            "bubble (s)": round(b.bubble, 3),
            "collective (s)": round(b.collective, 3),
            "compute (s)": round(b.compute, 3),
            "total (s)": round(b.total, 3),
        })
    report(
        "ablation_mbs",
        render_table(rows, title=f"Microbatch size sweep, GPT-3 2.7B, {g} GPUs, AxoNN+SAMO"),
    )
    # Eq. 9: message count halves as mbs doubles -> p2p strictly falls.
    p2ps = [simulate_batch(spec, g, "axonn+samo", mbs=m).p2p for m in (1, 2, 4)]
    assert p2ps[0] > p2ps[1] > p2ps[2]
    # Eq. 6-7: bubble grows with mbs (longer per-microbatch stage times).
    bubbles = [simulate_batch(spec, g, "axonn+samo", mbs=m).bubble for m in (1, 2, 4)]
    assert bubbles[0] < bubbles[1] < bubbles[2]


def test_ablation_mbs_and_framework(report):
    """The mbs optimum shifts with the framework: dense AxoNN (larger
    G_inter -> deeper pipeline -> costlier bubble) prefers smaller
    microbatches than AxoNN+SAMO at the same GPU count."""
    spec = get_spec("gpt3-2.7b")
    g = 256
    rows = []
    best = {}
    for fw in ("axonn", "axonn+samo"):
        sweep = {}
        for mbs in (1, 2, 4, 8):
            sweep[mbs] = simulate_batch(spec, g, fw, mbs=mbs).total
        best[fw] = min(sweep, key=sweep.get)
        rows.append({
            "framework": fw,
            **{f"mbs={m}": f"{t:.2f}s" for m, t in sweep.items()},
            "best": best[fw],
        })
    report(
        "ablation_mbs_framework",
        render_table(rows, title=f"Batch time vs mbs per framework, GPT-3 2.7B, {g} GPUs"),
    )
    # Both frameworks must have an interior or boundary optimum; SAMO's
    # shallower pipeline tolerates at least as large a microbatch.
    assert best["axonn+samo"] >= best["axonn"]


def test_bench_mbs_sweep(benchmark):
    spec = get_spec("gpt3-2.7b")
    benchmark(lambda: [simulate_batch(spec, 256, "axonn+samo", mbs=m).total for m in (1, 2, 4)])
