"""Chrome-trace artifact checker: the CI smoke for ``repro trace``.

Usage::

    python -m repro trace --chrome /tmp/t.json
    python benchmarks/check_trace.py /tmp/t.json

Validates the exported file the same way the tests do
(:func:`repro.obs.validate_chrome_trace`: every ``B`` closes with an
``E``, per-track timestamps are monotone) and additionally asserts the
acceptance-criteria content: the default degraded-ring overlap run must
contain distinct tracks for pipeline stages, links, and allreduce
buckets. Exits non-zero on any failure.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs import validate_chrome_trace  # noqa: E402


def run(path: str, require_tracks: bool = True) -> list[str]:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"cannot load {path}: {err}"]
    errors = validate_chrome_trace(doc)

    events = doc.get("traceEvents", [])
    tracks = sorted(
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    )
    n_be = sum(1 for e in events if e.get("ph") in ("B", "E"))
    print(
        f"check_trace: {path}: {n_be} B/E events over {len(tracks)} tracks, "
        f"{len(errors)} structural errors"
    )
    if require_tracks:
        for kind in ("stage", "link", "ring"):
            if not any(kind in t for t in tracks):
                errors.append(f"no '{kind}' track in {tracks[:8]}...")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_trace.py TRACE.json [--no-require-tracks]", file=sys.stderr)
        return 2
    errors = run(argv[1], require_tracks="--no-require-tracks" not in argv[2:])
    for e in errors:
        print(f"  {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
