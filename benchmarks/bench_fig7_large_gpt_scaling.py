"""Figure 7 — strong scaling of GPT-3 6.7B (128-1024 GPUs) and 13B
(256-2048 GPUs). Paper annotations: 6.7B 11/16/22/23%, 13B 19/19/22/26%.
"""

from benchmarks.bench_fig6_gpt_scaling import gpt_sweep
from repro.models import get_spec
from repro.parallel import simulate_batch

PAPER = {
    "gpt3-6.7b": {128: 11, 256: 16, 512: 22, 1024: 23},
    "gpt3-13b": {256: 19, 512: 19, 1024: 22, 2048: 26},
}


def test_figure7_gpt3_6p7b(report):
    speedups = gpt_sweep("gpt3-6.7b", report, "Figure 7")
    vals = list(speedups.values())
    assert vals[-1] > vals[0]
    assert all(3 <= v <= 33 for v in vals)


def test_figure7_gpt3_13b(report):
    speedups = gpt_sweep("gpt3-13b", report, "Figure 7")
    vals = list(speedups.values())
    assert all(9 <= v <= 36 for v in vals)  # paper band 19-26%


def test_bench_largest_configuration(benchmark):
    spec = get_spec("gpt3-13b")
    benchmark(simulate_batch, spec, 2048, "axonn+samo")
