"""The ``repro.api`` session facade, end to end.

One Job/Machine/ScenarioSet vocabulary replaces the scattered legacy
kwargs: the same frozen ``Job`` flows through the Figure-8 breakdown,
the event-driven pipeline trace, the configuration search, and robust
planning over a weighted scenario distribution — all sharing one
evaluation cache.

Run: ``PYTHONPATH=src python examples/api_session.py``
"""

import json

from repro.api import Job, Machine, ScenarioSet, Session, available_fidelities

# ---------------------------------------------------------------------------
# 1. a machine, a session, a job
# ---------------------------------------------------------------------------
machine = Machine.summit()  # Machine.summit(budget_gb=12) re-budgets the V100s
session = Session(machine)
job = Job(model="gpt3-xl", n_gpus=64, framework="axonn+samo", sparsity=0.9)

print(f"machine: {machine.name}, {machine.gpus_per_node} GPUs/node, "
      f"{machine.gpu_memory_bytes / 2**30:.0f} GiB/GPU")
print(f"job    : {job.describe()}")
print(f"costing backends registered: {', '.join(available_fidelities())}")

# ---------------------------------------------------------------------------
# 2. breakdown — the Figure-8 phases of one training batch
# ---------------------------------------------------------------------------
b = session.breakdown(job)
print(f"\nbreakdown (G_inter={b.config.g_inter}, G_data={b.config.g_data}):")
for phase in ("compute", "p2p", "bubble", "collective", "other"):
    print(f"  {phase:10s} {getattr(b, phase):6.3f} s")
print(f"  {'total':10s} {b.total:6.3f} s")

# ---------------------------------------------------------------------------
# 3. trace — the event-driven 1F1B schedule behind fidelity='sim'
# ---------------------------------------------------------------------------
sim_job = job.with_(fidelity="sim")
trace = session.trace(sim_job)
print(f"\ntrace: {trace.g_inter} stages, makespan {trace.makespan:.3f} s, "
      f"mean idle {trace.mean_idle_time():.3f} s "
      f"({trace.n_replicas} data-parallel replicas priced)")

# a degraded machine changes the same trace
slow = session.trace(sim_job, scenario="straggler")
print(f"under 'straggler': makespan {slow.makespan:.3f} s "
      f"({(slow.makespan / trace.makespan - 1) * 100:+.1f}%)")

# ---------------------------------------------------------------------------
# 4. plan — search the configuration space
# ---------------------------------------------------------------------------
plan = session.plan(job)
best = plan.best
print(f"\nplan: best of {len(plan.evaluations)} candidates -> "
      f"{best.config.describe()}")
print(f"  {best.total_time:.2f} s/batch, {best.throughput:.0f} samples/s, "
      f"{best.memory_bytes / 2**30:.1f} GiB/GPU")

# plans serialize to diffable JSON artifacts (same payload as --json)
artifact = json.dumps(plan.to_dict())
print(f"  JSON artifact: {len(artifact)} bytes "
      f"(best config {json.loads(artifact)['best']['config']['framework']})")

# ---------------------------------------------------------------------------
# 5. robust_plan — expected cost over a scenario distribution
# ---------------------------------------------------------------------------
# a named distribution...
robust = session.robust_plan(
    Job(model="gpt3-xl", n_gpus=32), "mixed-degraded", microbatch_sizes=(1,)
)
print(f"\nrobust plan over 'mixed-degraded' "
      f"(weights {dict(zip(robust.scenario_set.labels(), [round(w, 2) for w in robust.scenario_set.weights]))}):")
rb = robust.best
print(f"  expected-cost winner: {rb.config.describe()}")
print(f"    E[time] {rb.expected_time:.2f} s, worst {rb.worst_time:.2f} s "
      f"under '{rb.worst_scenario}'")
mm = robust.best_worst_case()
print(f"  minimax winner      : {mm.config.describe()} "
      f"(worst {mm.worst_time:.2f} s)")

# ...or a custom weighted set; evaluations are shared through the cache,
# so overlapping scenarios cost nothing extra
custom = ScenarioSet.of("uniform", "degraded", weights=(0.7, 0.3), name="two-state")
robust2 = session.robust_plan(
    Job(model="gpt3-xl", n_gpus=32), custom, microbatch_sizes=(1,)
)
print(f"  custom '{custom.name}' set best: "
      f"{robust2.best.config.describe()} "
      f"(E[time] {robust2.best.expected_time:.2f} s)")

# ---------------------------------------------------------------------------
# 6. place — optimize the data-parallel replica placement
# ---------------------------------------------------------------------------
# The block layout puts replica r on ranks [r*mpd, (r+1)*mpd); a chain
# straddling a node boundary pays InfiniBand hops. place() searches for
# a better assignment and is never worse than the block layout.
placed = session.place(Job(model="gpt3-2.7b", n_gpus=16))
print(f"\nplace: {placed.placement.n_replicas} replicas x "
      f"{placed.placement.g_inter} stages")
print(f"  slowest chain: block {placed.default_makespan:.3f} s -> "
      f"optimized {placed.makespan:.3f} s ({placed.improvement_pct:+.2f}%)")
print(f"  placement: {placed.placement.describe()}")
assert placed.makespan <= placed.default_makespan  # the hard guarantee

# ---------------------------------------------------------------------------
# 7. overlap — hide the allreduce behind the pipeline drain
# ---------------------------------------------------------------------------
# The additive model charges the data-parallel allreduce after the
# drain; overlap=True prices its event-timeline exposure instead.
deg_job = Job(model="gpt3-2.7b", n_gpus=128, fidelity="sim")
additive = session.breakdown(deg_job, scenario="degraded-ring")
overlapped = session.breakdown(deg_job.with_(overlap=True), scenario="degraded-ring")
print(f"\noverlap under 'degraded-ring': collective "
      f"{additive.collective:.3f} s additive -> "
      f"{overlapped.collective:.3f} s exposed "
      f"({overlapped.collective_hidden:.3f} s hidden behind the drain)")
print(f"  batch total {additive.total:.3f} s -> {overlapped.total:.3f} s")

stats = session.cache.stats()
print(f"\nshared evaluation cache: {stats['entries']} entries, "
      f"{stats['hits']} hits, {stats['misses']} misses")

# ---------------------------------------------------------------------------
# 8. metrics — every op above was counted and timed (repro.obs)
# ---------------------------------------------------------------------------
# The session carries a live MetricsRegistry even without tracing:
# planner cache hits + misses reconcile exactly with candidates, and
# estimator.calls{fidelity=...} with actual evaluations. Pass
# Session(machine, trace_to="out.json") to also export a Chrome trace
# (see docs/observability.md).
metrics = session.metrics()
ops = {k: v for k, v in metrics.items() if k.startswith("session.ops")}
print(f"\nsession metrics ({len(metrics)} series): ops {ops}")
print(f"  planner: {metrics['planner.candidates']} candidates = "
      f"{metrics['planner.cache.hits']} cache hits + "
      f"{metrics['planner.cache.misses']} evaluations")
assert (metrics["planner.cache.hits"] + metrics["planner.cache.misses"]
        == metrics["planner.candidates"])
