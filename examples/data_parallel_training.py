#!/usr/bin/env python
"""Functional data-parallel SAMO training over thread ranks.

Demonstrates the paper's Section IV-A optimization *executing for real*:
four ranks each hold a replica of a pruned GPT, compute on their shard of
the batch, all-reduce only the **compressed** fp16 gradients, and take the
SAMO optimizer step. The script reports the communication volume saved
relative to a dense all-reduce and verifies all replicas stay bitwise
identical.

Run:  python examples/data_parallel_training.py
"""

import numpy as np

from repro.comm import run_parallel
from repro.core import SAMOConfig
from repro.models import GPT, GPT_CONFIGS
from repro.parallel import DataParallelSAMOTrainer
from repro.pruning import magnitude_prune
from repro.reporting import format_bytes
from repro.train import CharCorpus

WORLD = 4
SPARSITY = 0.9
STEPS = 10
SHARD = 2  # samples per rank per step


def main() -> None:
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=30_000, seed=0)

    # Pre-sample every rank's shards so the run is reproducible.
    rng = np.random.default_rng(0)
    batches = [corpus.sample_batch(WORLD * SHARD, 32, rng) for _ in range(STEPS)]

    def worker(comm):
        model = GPT(cfg, seed=1)  # same init on every rank
        mask = magnitude_prune(model, SPARSITY)
        trainer = DataParallelSAMOTrainer(
            comm, model, mask, SAMOConfig(optimizer="adamw", lr=3e-3)
        )
        losses = []
        for x, y in batches:
            sl = slice(comm.rank * SHARD, (comm.rank + 1) * SHARD)
            losses.append(
                trainer.train_step(lambda m, xb, yb: m.loss(xb, yb), x[sl], y[sl])
            )
        checksum = float(sum(p.data.sum() for p in model.parameters()))
        dense_bytes_per_step = 2 * model.num_parameters()
        return losses, checksum, trainer.bytes_communicated, dense_bytes_per_step

    results = run_parallel(WORLD, worker)
    losses0, checksum0, comm_bytes, dense_per_step = results[0]

    print(f"{WORLD} ranks x {SHARD} samples/step, {STEPS} steps, sparsity {SPARSITY:.0%}")
    print("rank-0 loss curve:", " ".join(f"{l:.3f}" for l in losses0))
    assert losses0[-1] < losses0[0], "training should reduce the loss"

    checksums = {round(r[1], 4) for r in results}
    print(f"replica checksums identical across ranks: {len(checksums) == 1}")

    sparse_per_step = comm_bytes / STEPS
    print(f"all-reduce payload per step: {format_bytes(int(sparse_per_step))} compressed "
          f"vs {format_bytes(dense_per_step)} dense "
          f"({100 * (1 - sparse_per_step / dense_per_step):.0f}% less traffic — "
          "the paper's Section IV-A collective optimization)")


if __name__ == "__main__":
    main()
