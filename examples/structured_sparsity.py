#!/usr/bin/env python
"""Structured sparsity: when do sparse kernels actually win?

The paper's core design decision (Section III-A, motivated by Figure 1)
is to keep compute dense because *unstructured* sparse kernels lose to
cuBLAS below ~99% sparsity. Its related work (Section II-C) points at the
escape hatch: *structured* sparsity — whole blocks or column vectors —
keeps tensor cores busy and beats cuBLAS from ~70% sparsity (Chen et
al.). This example walks that trade-off with the library's block-sparse
substrate:

1. prune one model three ways (unstructured / column-vector / block) at
   the same sparsity and feed each mask to SAMO — the memory story is
   identical because SAMO only sees index sets;
2. compare the calibrated kernel models: dense cuBLAS vs Sputnik-class
   unstructured vs Chen-class block-sparse, locating the crossover;
3. run the real block spMM kernel and verify it computes exactly what
   the dense product computes.

Run:  python examples/structured_sparsity.py
"""

import numpy as np

from repro.core import SAMOConfig, SAMOTrainingState
from repro.pruning import block_prune, magnitude_prune, vector_prune
from repro.reporting import format_bytes, render_table
from repro.sparse import (
    BlockSparseMatrix,
    block_crossover_sparsity,
    block_sparse_time,
    fc_layer_time,
)
from repro.tensor import Linear, Sequential, Tensor

SPARSITY = 0.9


def main() -> None:
    rng = np.random.default_rng(0)
    net_for = lambda: Sequential(Linear(64, 128, rng=np.random.default_rng(1)),
                                 Linear(128, 32, rng=np.random.default_rng(2)))

    # --- 1. three granularities, one SAMO pipeline --------------------------
    rows = []
    for label, pruner in (
        ("unstructured (paper)", lambda m: magnitude_prune(m, SPARSITY)),
        ("column-vector v=4 (Chen)", lambda m: vector_prune(m, SPARSITY, v=4)),
        ("block 4x4 (Gray)", lambda m: block_prune(m, SPARSITY, (4, 4))),
    ):
        net = net_for()
        mask = pruner(net)
        state = SAMOTrainingState(
            net, mask, SAMOConfig(optimizer="adamw", lr=1e-3)
        )
        x = Tensor(rng.standard_normal((8, 64)).astype(np.float32))
        state.model(x).sum().backward()
        state.compress_gradients()
        state.step()
        state.consistency_check()
        rows.append({
            "granularity": label,
            "sparsity": f"{mask.sparsity:.3f}",
            "SAMO state": format_bytes(state.measured_bytes()["total"]),
        })
    print(render_table(rows, title=f"SAMO is granularity-agnostic (p={SPARSITY})"))

    # --- 2. the kernel trade-off --------------------------------------------
    rows = []
    for n in (512, 1024, 2048, 4096):
        t_dense = fc_layer_time("cublas", 576, n, SPARSITY)
        t_unstr = fc_layer_time("sputnik", 576, n, SPARSITY)
        t_block = block_sparse_time(576, n, n, SPARSITY)
        rows.append({
            "weight": f"{n}^2",
            "dense cuBLAS": f"{t_dense * 1e3:.3f} ms",
            "unstructured (Sputnik)": f"{t_unstr * 1e3:.3f} ms",
            "block-sparse (Chen)": f"{t_block * 1e3:.3f} ms",
        })
    print(render_table(rows, title="Modelled V100 kernel times at p=0.9"))
    print(f"block-sparse beats cuBLAS above p = "
          f"{block_crossover_sparsity():.2f} (Chen et al. report ~0.70)\n")

    # --- 3. the real kernel, bit-checked ------------------------------------
    bs = BlockSparseMatrix.random((256, 256), (16, 16), SPARSITY, rng)
    x = rng.standard_normal((256, 64)).astype(np.float32)
    dense = bs.to_dense()
    err = np.abs(bs.matmul(x) - dense @ x).max()
    print(f"block spMM vs dense GEMM: max |diff| = {err:.2e} "
          f"({bs.n_blocks} blocks stored, {format_bytes(bs.storage_bytes())} "
          f"vs {format_bytes(dense.nbytes)} dense)")
    assert err < 1e-4


if __name__ == "__main__":
    main()
