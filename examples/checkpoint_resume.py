#!/usr/bin/env python
"""Checkpoint and resume SAMO training — bit-identical continuation.

Long pretraining jobs live and die by checkpointing. SAMO checkpoints
store the *compressed* state (shared index, compressed fp32 masters,
compressed optimizer moments) and skip θ16 entirely — it is re-expanded
from θ32 on load — so the file carries the paper's memory savings to
disk. This example:

1. trains a pruned tiny GPT for a few steps and writes a checkpoint;
2. keeps training (the uninterrupted reference);
3. reloads the checkpoint into a *freshly initialised* model and replays
   the same batches;
4. verifies the resumed run is bit-identical to the uninterrupted one,
   and reports the checkpoint-size saving vs dense state.

Run:  python examples/checkpoint_resume.py
"""

import os
import tempfile

import numpy as np

from repro.core import (
    SAMOConfig,
    SAMOTrainingState,
    checkpoint_nbytes,
    load_state,
    save_state,
)
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import magnitude_prune
from repro.reporting import format_bytes
from repro.tensor import Tensor
from repro.train import CharCorpus

SPARSITY = 0.9
STEPS_BEFORE = 5
STEPS_AFTER = 5


def train_steps(state: SAMOTrainingState, corpus, n: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x, y = corpus.sample_batch(4, 32, rng)
        loss = state.model.loss(x, y)
        loss.backward()
        state.compress_gradients()
        state.step()


def flat_params(state: SAMOTrainingState) -> np.ndarray:
    return np.concatenate(
        [e.theta32_c for e in state.compressed]
        + [d.theta32.reshape(-1) for d in state.dense]
    )


def main() -> None:
    cfg = GPT_CONFIGS["gpt3-tiny"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=20_000, seed=0)

    model = GPT(cfg, seed=0)
    mask = magnitude_prune(model, SPARSITY)
    state = SAMOTrainingState(model, mask, SAMOConfig(optimizer="adamw", lr=3e-3))

    # --- phase 1: train and checkpoint -------------------------------------
    train_steps(state, corpus, STEPS_BEFORE, seed=1)
    path = os.path.join(tempfile.mkdtemp(), "samo_ckpt.npz")
    written = save_state(state, path)
    logical = checkpoint_nbytes(state)
    dense_equiv = 12 * sum(p.data.size for p in model.parameters())
    print(f"checkpoint after {STEPS_BEFORE} steps: {format_bytes(written)} on disk")
    print(f"  logical state {format_bytes(logical)} vs "
          f"{format_bytes(dense_equiv)} for a dense fp32+Adam checkpoint "
          f"({100 * (1 - logical / dense_equiv):.0f}% smaller)")

    # --- phase 2: uninterrupted reference ----------------------------------
    train_steps(state, corpus, STEPS_AFTER, seed=2)
    reference = flat_params(state)

    # --- phase 3: resume from disk on a fresh model -------------------------
    fresh = GPT(cfg, seed=123)  # deliberately different init
    resumed = load_state(fresh, path)
    print(f"resumed at step {resumed.step_count}; replaying {STEPS_AFTER} steps")
    train_steps(resumed, corpus, STEPS_AFTER, seed=2)

    # --- verify --------------------------------------------------------------
    same = np.array_equal(flat_params(resumed), reference)
    print(f"resumed run bit-identical to uninterrupted run: {same}")
    assert same, "resume must be bit-identical"
    resumed.consistency_check()
    print("storage invariants hold after resume ✓")


if __name__ == "__main__":
    main()
