#!/usr/bin/env python
"""Functional DeepSpeed-3D building blocks: Megatron tensor parallelism
composed with ZeRO-1 optimizer sharding, on real thread ranks.

The paper's strongest baseline, DeepSpeed-3D, combines MegatronLM
intra-layer sharding with ZeRO data parallelism (Section V-B). This
example runs both for real on a 2 x 2 grid of thread ranks:

* ranks within a *tensor group* split every weight matrix (column/row
  parallel) and communicate activations via Megatron's f/g all-reduces;
* the two replicas are kept consistent by ZeRO-1: each rank owns half of
  the fp32 optimizer state and all-gathers updated parameters.

It then verifies the distributed run tracks a serial reference and that
each rank's fp32 optimizer memory is the expected fraction.

Run:  python examples/tensor_parallel_zero.py
"""

import numpy as np

from repro.comm import Communicator, World, run_parallel
from repro.parallel import TensorParallelMLP, shard_dim
from repro.tensor import Tensor

D_MODEL, D_HIDDEN = 16, 32
TP = 2  # tensor-parallel width
STEPS = 5
LR = 0.05
SEED = 7


def serial_reference(batches):
    """Plain single-rank training with the same seeded initialisation."""
    world = World(1)
    comm = Communicator(world, 0)
    mlp = TensorParallelMLP(D_MODEL, D_HIDDEN, comm, rng=np.random.default_rng(SEED))
    losses = []
    for x in batches:
        loss = (mlp(Tensor(x)) ** 2).mean()
        loss.backward()
        for p in mlp.parameters():
            p.data[...] -= LR * p.grad
            p.grad = None
        losses.append(loss.item())
    return losses


def main() -> None:
    rng = np.random.default_rng(0)
    batches = [rng.standard_normal((8, D_MODEL)).astype(np.float32) for _ in range(STEPS)]
    ref_losses = serial_reference(batches)

    def worker(comm):
        # All TP ranks hold a shard of each weight; Megatron's f/g ops keep
        # the math identical to the serial model.
        mlp = TensorParallelMLP(
            D_MODEL, D_HIDDEN, comm, rng=np.random.default_rng(SEED)
        )
        losses = []
        for x in batches:
            loss = (mlp(Tensor(x)) ** 2).mean()
            loss.backward()
            for p in mlp.parameters():
                p.data[...] -= LR * p.grad
                p.grad = None
            losses.append(loss.item())
        return losses

    results = run_parallel(TP, worker)
    print(f"tensor-parallel width {TP}: per-rank weight shard = "
          f"{shard_dim(D_HIDDEN, TP)} of {D_HIDDEN} hidden neurons")
    print(f"{'step':>4} {'serial loss':>12} {'TP loss':>12}")
    for i, (a, b) in enumerate(zip(ref_losses, results[0])):
        print(f"{i:>4} {a:>12.6f} {b:>12.6f}")
        assert abs(a - b) < 1e-4, "tensor-parallel run diverged from serial"
    print("tensor-parallel == serial ✓")

    # --- ZeRO-1 on top: shard the optimizer state across replicas ----------
    from repro.parallel import Zero1DataParallel
    from repro.tensor import GELU, Linear, Sequential

    def zero_worker(comm):
        replica = Sequential(
            Linear(D_MODEL, D_HIDDEN, rng=np.random.default_rng(3)),
            GELU(),
            Linear(D_HIDDEN, 4, rng=np.random.default_rng(4)),
        )
        zero = Zero1DataParallel(replica, comm, lr=1e-2)
        rng_local = np.random.default_rng(100 + comm.rank)
        for _ in range(STEPS):
            x = rng_local.standard_normal((8, D_MODEL)).astype(np.float32)
            (replica(Tensor(x)) ** 2).mean().backward()
            zero.step()
        flat = np.concatenate([p.data.reshape(-1) for p in replica.parameters()])
        return flat, zero.shard_bytes()

    world = 4
    outs = run_parallel(world, zero_worker)
    flats = [f for f, _ in outs]
    for f in flats[1:]:
        assert np.array_equal(f, flats[0]), "replicas diverged"
    full_fp32 = 3 * 4 * flats[0].size  # master + two Adam moments, fp32
    print(f"\nZeRO-1 over {world} replicas: replicas identical after "
          f"{STEPS} steps ✓")
    print(f"  fp32 optimizer bytes/rank: {outs[0][1]:,} "
          f"(~1/{world} of the replicated {full_fp32:,})")


if __name__ == "__main__":
    main()
