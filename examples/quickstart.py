#!/usr/bin/env python
"""Quickstart: prune a tiny GPT and train it with SAMO.

Walks the whole public API in ~30 seconds:

1. build a runnable GPT and a synthetic character corpus;
2. prune 90% of the weights by magnitude;
3. train with SAMO's compressed model state and compare the measured
   memory against default mixed precision;
4. verify the loss falls and pruned weights stay zero.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SAMOConfig, dense_model_state_bytes
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import magnitude_prune
from repro.reporting import format_bytes
from repro.train import CharCorpus, Trainer, evaluate_perplexity

SPARSITY = 0.9
ITERATIONS = 40


def main() -> None:
    cfg = GPT_CONFIGS["gpt3-tiny"]
    model = GPT(cfg, seed=0)
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=30_000, seed=0)
    print(f"model: {cfg.name}, {model.num_parameters():,} parameters")

    # --- prune ------------------------------------------------------------
    mask = magnitude_prune(model, SPARSITY)
    print(f"pruned {mask.sparsity:.1%} of weights "
          f"({mask.total_kept():,} kept across {len(mask)} tensors)")

    # --- SAMO training -----------------------------------------------------
    trainer = Trainer(
        model,
        mode="samo",
        mask=mask,
        config=SAMOConfig(optimizer="adamw", lr=3e-3, weight_decay=0.01),
    )
    measured = trainer.model_state_bytes()
    dense = dense_model_state_bytes(model.num_parameters())
    print(f"model state: SAMO {format_bytes(measured['total'])} vs "
          f"dense mixed precision {format_bytes(dense)} "
          f"({100 * (1 - measured['total'] / dense):.0f}% saved; paper Fig. 2: 78% at p=0.9)")

    rng = np.random.default_rng(0)
    for it in range(ITERATIONS):
        x, y = corpus.sample_batch(8, 32, rng)
        loss = trainer.step(x, y)
        if (it + 1) % 10 == 0:
            ppl = evaluate_perplexity(model, corpus, 4, 32, n_batches=3)
            print(f"iter {it + 1:3d}  loss {loss:.3f}  val ppl {ppl:.1f}")

    # --- invariants ---------------------------------------------------------
    trainer.state.consistency_check()
    print("consistency check passed: θ16 == expand(θ32→fp16), pruned weights are 0")
    assert trainer.log.losses[-1] < trainer.log.losses[0]
    print("done — loss fell from "
          f"{trainer.log.losses[0]:.3f} to {trainer.log.losses[-1]:.3f}")


if __name__ == "__main__":
    main()
