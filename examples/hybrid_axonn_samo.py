#!/usr/bin/env python
"""Executable hybrid AxoNN+SAMO: G_inter x G_data on thread ranks.

Four ranks form a 2 (pipeline stages) x 2 (data replicas) grid, the
paper's hybrid decomposition running for real:

* rank layout via :class:`repro.comm.GridLayout` (stage = rank % G_inter);
* activations and activation-gradients move point-to-point along each
  pipeline (inter-layer parallelism, Section IV-B);
* each stage all-reduces its **compressed** fp16 gradients across the
  data-parallel replicas before the SAMO step (Section IV-A);
* replicas remain bitwise identical, pruned weights stay zero.

Run:  python examples/hybrid_axonn_samo.py
"""

import numpy as np

from repro.comm import Communicator, GridLayout, World, run_parallel
from repro.core import SAMOConfig
from repro.parallel import PipelineStageTrainer, StageModule, partition_module_list
from repro.pruning import magnitude_prune
from repro.tensor import GELU, Linear, Sequential, Tensor, functional as F

HID, N_BLOCKS = 16, 4
G_INTER, G_DATA = 2, 2
SPARSITY = 0.8
STEPS = 12


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, HID)).astype(np.float32)
    y = rng.integers(0, HID, size=8)

    grid = GridLayout(G_INTER * G_DATA, g_inter=G_INTER)
    pipe_worlds = [World(G_INTER) for _ in range(G_DATA)]
    data_worlds = [World(G_DATA) for _ in range(G_INTER)]

    def worker(comm):
        stage = grid.stage_of(comm.rank)
        replica = grid.replica_of(comm.rank)
        pipe_comm = Communicator(pipe_worlds[replica], stage)
        data_comm = Communicator(data_worlds[stage], replica)

        blocks = [
            Sequential(Linear(HID, HID, rng=np.random.default_rng(100 + i)), GELU())
            for i in range(N_BLOCKS)
        ]
        stages = partition_module_list(blocks, G_INTER)
        mask = magnitude_prune(StageModule(stages[stage]), SPARSITY)
        trainer = PipelineStageTrainer(
            pipe_comm,
            stages[stage],
            head=(lambda b: Tensor(b)) if stage == 0 else None,
            loss_head=(lambda o, t: F.cross_entropy(o, t)) if stage == G_INTER - 1 else None,
            mask=mask,
            config=SAMOConfig(optimizer="adam", lr=1e-2),
        )

        def sparse_allreduce(state):
            for e in state.compressed:
                if e.grad16_c is not None:
                    total = data_comm.allreduce(e.grad16_c.astype(np.float32))
                    e.grad16_c = (total / G_DATA).astype(np.float16)
            for d in state.dense:
                if d.grad16 is not None:
                    total = data_comm.allreduce(d.grad16.astype(np.float32))
                    d.grad16 = (total / G_DATA).astype(np.float16)

        trainer.grad_sync = sparse_allreduce

        shard = slice(replica * 4, (replica + 1) * 4)
        losses = [trainer.train_step([x[shard]], [y[shard]]) for _ in range(STEPS)]
        checksum = float(sum(p.data.sum() for p in trainer.module.parameters()))
        zero_frac = float(np.mean([
            (p.data == 0).mean()
            for n, p in trainer.module.named_parameters() if n.endswith("weight")
        ]))
        return stage, replica, losses, checksum, zero_frac

    results = run_parallel(G_INTER * G_DATA, worker)
    print(f"grid: G_inter={G_INTER} x G_data={G_DATA}, sparsity={SPARSITY:.0%}, {STEPS} steps")
    for stage, replica, losses, checksum, zf in results:
        tail = (" loss " + " ".join(f"{l:.3f}" for l in losses[-4:])) if losses[0] is not None else ""
        print(f"  rank(stage={stage}, replica={replica}): checksum={checksum:+.4f} "
              f"zero-weight frac={zf:.2f}{tail}")
    # replicas of the same stage must be identical
    by_stage = {}
    for stage, _, _, checksum, _ in results:
        by_stage.setdefault(stage, []).append(round(checksum, 6))
    assert all(len(set(v)) == 1 for v in by_stage.values())
    print("replica consistency: OK (stage checksums identical across replicas)")
    last = [r[2] for r in results if r[0] == G_INTER - 1][0]
    assert last[-1] < last[0]
    print(f"training: loss {last[0]:.3f} -> {last[-1]:.3f}")


if __name__ == "__main__":
    main()
