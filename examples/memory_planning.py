#!/usr/bin/env python
"""Memory planning: where do SAMO's savings go? (paper Secs. III-D, IV-B)

For each GPT-3 model this script prints:

* the Figure 2 analytical savings at its sparsity;
* per-component model-state bytes (Eq. 1 terms);
* the smallest feasible G_inter on 16 GB V100s under dense vs SAMO
  storage, and the resulting pipeline/data decomposition on a machine of
  the paper's scale.

Run:  python examples/memory_planning.py [sparsity]   (default 0.9)
"""

import sys

from repro.core import memory_savings_percent, samo_breakdown
from repro.models import TABLE_I, get_spec
from repro.parallel import StorageMode, choose_g_inter, memory_per_gpu, model_state_bytes
from repro.reporting import format_bytes, render_table


def main() -> None:
    sparsity = float(sys.argv[1]) if len(sys.argv) > 1 else 0.9
    print(f"sparsity p = {sparsity}  ->  analytical savings "
          f"{memory_savings_percent(sparsity):.1f}% of model state (Fig. 2)\n")

    rows = []
    for name in ("gpt3-xl", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b"):
        spec = get_spec(name)
        entry = TABLE_I[name]
        g = entry.max_gpus
        dense_state = model_state_bytes(spec, StorageMode.DENSE)
        samo_state = model_state_bytes(spec, StorageMode.SAMO, sparsity)
        gi_d = choose_g_inter(spec, g, StorageMode.DENSE)
        gi_s = choose_g_inter(spec, g, StorageMode.SAMO, sparsity)
        rows.append({
            "model": name,
            "dense state": format_bytes(dense_state),
            "SAMO state": format_bytes(samo_state),
            "G_inter dense": gi_d,
            "G_inter SAMO": gi_s,
            f"decomposition @{g} GPUs": f"{gi_d}x{g // gi_d} -> {gi_s}x{g // gi_s}",
            "mem/GPU SAMO": format_bytes(
                memory_per_gpu(spec, gi_s, StorageMode.SAMO, sparsity)
            ),
        })
    print(render_table(rows, title="G_inter selection on 16 GB V100s"))

    print()
    spec = get_spec("gpt3-2.7b")
    b = samo_breakdown(spec.prunable_count, sparsity)
    comp_rows = [{"component": k, "bytes": format_bytes(v)} for k, v in b.as_dict().items()]
    print(render_table(comp_rows, title=f"GPT-3 2.7B SAMO state breakdown at p={sparsity} (Eq. 1)"))
    print("\nNote: θ16 stays dense so forward/backward run on dense GPU kernels —")
    print("the compute-efficiency/memory trade-off at the heart of SAMO (Sec. III-A).")


if __name__ == "__main__":
    main()
