#!/usr/bin/env python
"""Figure 4 workflow: Early-Bird pruning, then dense vs SAMO pretraining.

Reproduces the paper's statistical-efficiency protocol end to end at tiny
scale:

1. warm up a GPT while the Early-Bird pruner watches the magnitude mask
   converge (You et al.'s mask-distance criterion);
2. train the dense baseline ("AxoNN") and the pruned network with
   compressed state ("AxoNN+SAMO") from the same initialisation and data
   order;
3. print both validation-perplexity curves side by side.

Run:  python examples/gpt_pretraining_samo.py
"""

import numpy as np

from repro.core import SAMOConfig
from repro.models import GPT, GPT_CONFIGS
from repro.pruning import EarlyBirdPruner
from repro.reporting import render_table, series_plot
from repro.train import CharCorpus, Trainer, evaluate_perplexity

SPARSITY = 0.9
ITERS = 60
EVAL_EVERY = 10


def train_curve(model: GPT, corpus: CharCorpus, mode: str, mask=None) -> list[float]:
    trainer = Trainer(model, mode=mode, mask=mask,
                      config=SAMOConfig(optimizer="adamw", lr=3e-3))
    rng = np.random.default_rng(77)  # same data order for both systems
    curve = []
    for it in range(ITERS):
        x, y = corpus.sample_batch(8, 32, rng)
        trainer.step(x, y)
        if (it + 1) % EVAL_EVERY == 0:
            curve.append(evaluate_perplexity(model, corpus, 4, 32, n_batches=3))
    return curve


def main() -> None:
    cfg = GPT_CONFIGS["gpt3-mini"]
    corpus = CharCorpus(vocab_size=cfg.vocab_size, length=50_000, seed=0)

    # --- dense baseline ------------------------------------------------------
    dense_model = GPT(cfg, seed=0)
    print("training dense baseline (AxoNN numerics)...")
    dense_curve = train_curve(dense_model, corpus, "dense")

    # --- Early-Bird ticket -----------------------------------------------------
    samo_model = GPT(cfg, seed=0)
    eb = EarlyBirdPruner(sparsity=SPARSITY, epsilon=0.15, window=2)
    warm = Trainer(samo_model, mode="dense", config=SAMOConfig(optimizer="adamw", lr=3e-3))
    rng = np.random.default_rng(5)
    epoch = 0
    while not eb.converged and epoch < 8:
        for _ in range(3):
            x, y = corpus.sample_batch(8, 32, rng)
            warm.step(x, y)
        eb.observe(samo_model)
        epoch += 1
        d = eb.distance_history[-1] if eb.distance_history else float("nan")
        print(f"  early-bird epoch {epoch}: mask distance {d:.4f}")
    print(f"ticket drawn after {epoch} epochs (converged={eb.converged}), "
          f"sparsity {eb.ticket.sparsity:.1%}")

    # --- SAMO run ---------------------------------------------------------------
    print("training pruned network with SAMO (AxoNN+SAMO numerics)...")
    samo_curve = train_curve(samo_model, corpus, "samo", mask=eb.ticket)

    # --- report -------------------------------------------------------------------
    iters = [(i + 1) * EVAL_EVERY for i in range(len(dense_curve))]
    print(render_table(
        [
            {"iteration": it, "AxoNN ppl": round(d, 2), "AxoNN+SAMO ppl": round(s, 2)}
            for it, d, s in zip(iters, dense_curve, samo_curve)
        ],
        title="Validation perplexity (cf. paper Figure 4)",
    ))
    print()
    print(series_plot({"AxoNN": dense_curve, "AxoNN+SAMO": samo_curve}, iters,
                      title="Validation perplexity curves"))
    print(f"\nfinal perplexity ratio SAMO/dense: {samo_curve[-1] / dense_curve[-1]:.2f} "
          "(paper: pruned matches dense)")


if __name__ == "__main__":
    main()
