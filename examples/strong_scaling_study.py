#!/usr/bin/env python
"""Strong-scaling study on the simulated Summit (paper Figs. 6-8).

Sweeps GPT-3 2.7B from 64 to 512 GPUs across all four frameworks, prints
the Figure 6 series, the Figure 8 batch-time breakdown, and the G_inter
decomposition SAMO's memory savings unlock.

Run:  python examples/strong_scaling_study.py [model]
      model in {gpt3-xl, gpt3-2.7b, gpt3-6.7b, gpt3-13b}; default 2.7B.
"""

import sys

from repro.models import TABLE_I, get_spec, gpu_counts, narayanan_transformer_flops, percent_of_peak
from repro.parallel import FRAMEWORKS, simulate_batch
from repro.reporting import log2_axis_plot, render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gpt3-2.7b"
    spec = get_spec(name)
    entry = TABLE_I[name]
    counts = gpu_counts(entry)
    print(spec.summary())

    # --- Figure 6/7 style sweep -----------------------------------------------
    rows, series = [], {fw: [] for fw in FRAMEWORKS}
    for g in counts:
        res = {fw: simulate_batch(spec, g, fw) for fw in FRAMEWORKS}
        for fw in FRAMEWORKS:
            series[fw].append(res[fw].total)
        rows.append({
            "GPUs": g,
            **{fw: f"{res[fw].total:.2f}s" for fw in FRAMEWORKS},
            "SAMO speedup": f"{res['axonn+samo'].speedup_over(res['axonn']):.0f}%",
        })
    print(render_table(rows, title=f"Time per iteration, {name} (p=0.9)"))
    print()
    print(log2_axis_plot(series, counts, title="strong scaling (s, log)"))

    # --- decomposition the memory savings unlock --------------------------------
    print()
    decomp = []
    for g in counts:
        a = simulate_batch(spec, g, "axonn")
        s = simulate_batch(spec, g, "axonn+samo")
        decomp.append({
            "GPUs": g,
            "AxoNN G_inter x G_data": f"{a.config.g_inter} x {a.config.g_data}",
            "SAMO G_inter x G_data": f"{s.config.g_inter} x {s.config.g_data}",
            "AxoNN mem/GPU": f"{a.memory_per_gpu / 2**30:.1f} GiB",
            "SAMO mem/GPU": f"{s.memory_per_gpu / 2**30:.1f} GiB",
        })
    print(render_table(decomp, title="How SAMO's memory savings shrink G_inter (Sec. IV-B)"))

    # --- Figure 8 style breakdown --------------------------------------------------
    print()
    br = []
    for g in counts[-3:]:
        for fw in ("axonn", "axonn+samo"):
            b = simulate_batch(spec, g, fw)
            br.append({
                "GPUs": g, "framework": fw,
                "compute": f"{b.compute:.2f}", "p2p": f"{b.p2p:.2f}",
                "bubble": f"{b.bubble:.2f}", "collective": f"{b.collective:.2f}",
                "total": f"{b.total:.2f}",
            })
    print(render_table(br, title="Batch-time breakdown, seconds (cf. Figure 8)"))

    if spec.family == "gpt":
        cfg_map = {"gpt3-xl": (24, 2048), "gpt3-2.7b": (32, 2560),
                   "gpt3-6.7b": (32, 4096), "gpt3-13b": (40, 5120)}
        l, h = cfg_map[name]
        flops = narayanan_transformer_flops(spec.batch_size, 2048, l, h, 50257)
        g = counts[-1]
        print()
        for fw in FRAMEWORKS:
            pct = percent_of_peak(flops, simulate_batch(spec, g, fw).total, g)
            print(f"  % of peak fp16 at {g} GPUs, {fw:12s}: {pct:.1f}%")


if __name__ == "__main__":
    main()
