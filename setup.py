"""Legacy setuptools shim.

The offline environment lacks the `wheel` package, so PEP-517 editable
installs (`pip install -e .`) cannot build. `python setup.py develop`
works with the preinstalled setuptools and is what CI uses here.
"""
from setuptools import setup

setup()
